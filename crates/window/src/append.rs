//! The delta API: amortized incremental window maintenance over appends.
//!
//! [`IncrementalEngine`] holds a [`WindowQuery`] open against a growing
//! table. Each [`IncrementalEngine::append`] ingests a batch of `b` rows and
//! refreshes the query's outputs without re-running the full operator:
//!
//! * **Fast path** (splice): when the frame is a monotonic ROWS frame with
//!   constant bounds, every function call is forest-eligible (see below) and
//!   the batch sorts entirely *after* the existing partition rows (an
//!   end-append — the common time-series shape), the engine splices the new
//!   rows onto the sorted partition, extends the resolved frames and peer
//!   groups in O(b), appends the new ORDER BY keys to a per-call
//!   [`MstForest`] — the LSM-style logarithmic forest of arena-flat merge
//!   sort trees from `holistic-core` — and probes outputs for the new rows
//!   only. Old outputs are provably unchanged (old ROWS bounds never reach
//!   the new positions), so the refresh is O(b log² n) amortized instead of
//!   O(n log n).
//! * **Recompute path**: anything else (mid-stream inserts, RANGE/GROUPS
//!   frames, per-row bounds, FILTER, non-forest functions, NULL or mixed-type
//!   keys) falls back to a per-partition re-sort + re-evaluation that is
//!   bit-identical to [`WindowQuery::execute_with`], then diffs the outputs
//!   to report exactly which rows changed. Untouched partitions are never
//!   revisited.
//!
//! Forest-eligible calls are the single-key order-statistic family —
//! `COUNT(*)`, `ROW_NUMBER`, `RANK`, `PERCENT_RANK`, `CUME_DIST`,
//! `PERCENTILE_DISC`/`CONT` and `MEDIAN` with literal fractions — whose
//! outputs reduce to `count_below` / `count_leq` / `select` probes against
//! the mergeable forest. Their ORDER BY keys must encode into the forest's
//! `u64` value domain (non-NULL homogeneous integers or finite floats,
//! order-isomorphically; see `encode_key`).
//!
//! Per partition the engine also maintains [`StatsAcc`] — the O(b)
//! incrementally-updated [`PartitionStats`] — and re-runs the cost-based
//! strategy choice after every batch, so a partition whose frame profile
//! drifts (say, from narrow sliding frames to wide ones) re-plans without a
//! from-scratch scan. Artifact caches persist per partition and are kept
//! sound through the `ArtifactCache` invalidation hooks: every recompute
//! invalidates all position-space artifacts up front and releases its hoisted
//! key seeds afterwards so the engine's key columns stay uniquely owned and
//! extend in place.

use crate::artifacts::{self, ArtifactCache, BudgetGovernor};
use crate::column::Column;
use crate::error::{Error, Result};
use crate::eval::direct::DirectCtx;
use crate::eval::{alt, direct, evaluate_call, Ctx};
use crate::executor::{AtomicProbeKernel, ExecOptions, SpillStats, WindowQuery};
use crate::expr::Expr;
use crate::frame::{resolve_frames_opts, FrameBound, FrameMode, ResolvedFrames};
use crate::hash::hash_values;
use crate::order::{sort_permutation, KeyColumns};
use crate::plan::{
    canonical_order, plan_query, sort_keys_of, ArtifactKey, CanonicalSortKey, QueryPlan,
};
use crate::spec::{FuncKind, FunctionCall};
use crate::strategy::{choose, PartitionStats, StatsAcc, Strategy};
use crate::table::Table;
use crate::value::Value;
use crate::vm::{AtomicExprVm, ExprVmStats};
use holistic_core::{MstForest, RangeSet};
use rustc_hash::FxHashMap;
use std::cmp::Ordering;
use std::sync::Arc;

/// Counters describing what one [`IncrementalEngine::append`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendProfile {
    /// Rows ingested by this append.
    pub appended_rows: usize,
    /// Partitions that received at least one new row.
    pub touched_partitions: usize,
    /// Partitions created by this append.
    pub new_partitions: usize,
    /// Touched partitions refreshed through the O(b) splice fast path.
    pub spliced_partitions: usize,
    /// Touched partitions refreshed through full recompute + diff.
    pub recomputed_partitions: usize,
    /// New rows whose outputs came from forest probes (fast path).
    pub fast_path_rows: usize,
    /// Partition rows re-evaluated by the recompute path.
    pub fallback_rows: usize,
    /// Strategy re-plans whose choices differ from the previous batch.
    pub strategy_replans: usize,
    /// Stale artifacts evicted from partition caches by this append.
    pub evicted_artifacts: usize,
    /// Total sorted runs across all call forests after this append (gauge).
    pub forest_runs: usize,
    /// Cumulative run merges performed by all call forests (gauge).
    pub forest_merges: u64,
    /// Cumulative elements rewritten by forest run merges (gauge; divide by
    /// total appended elements for the amortization factor).
    pub forest_rebuilt_elements: u64,
    /// Artifact bytes built by this append's recomputes (the per-build
    /// footprints the caches record — previously discarded, leaving the
    /// profile blind to artifact memory after the first append).
    pub artifact_bytes_built: u64,
    /// Budget-governed artifact bytes resident after this append (gauge).
    pub resident_artifact_bytes: u64,
    /// High-water mark of budget-governed resident bytes so far (gauge).
    pub peak_resident_artifact_bytes: u64,
    /// Arena bytes held by the fast path's per-call forests (gauge;
    /// observation only — forests are not budget-governed).
    pub forest_resident_bytes: u64,
}

/// What changed after one append.
#[derive(Debug, Clone, Default)]
pub struct AppendResult {
    /// Table row indices whose output values changed (or are new), ascending.
    /// On the fast path this is exactly the batch's rows; on the recompute
    /// path it is the diff against the previous outputs.
    pub changed_outputs: Vec<usize>,
    /// What the engine did to get there.
    pub profile: AppendProfile,
}

/// The forest's `u64` key domain: which SQL type a partition-call's ORDER BY
/// keys encode from. Mixing types (or meeting a NULL) makes a partition-call
/// forest-ineligible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyTy {
    Int,
    Float,
}

/// Encodes one ORDER BY key value into the forest's `u64` domain,
/// order-isomorphically under the sort direction: `a` sorts before `b` iff
/// `encode(a) < encode(b)`. `u64::MAX` is reserved by the forest for
/// `count_leq`, so values encoding to it are rejected (`i64::MAX` ascending,
/// `i64::MIN` descending). NULLs and non-numeric types are rejected.
fn encode_key(v: &Value, desc: bool) -> Option<(u64, KeyTy)> {
    let (raw, ty) = match v {
        Value::Int(x) => ((*x as u64) ^ (1 << 63), KeyTy::Int),
        Value::Float(f) if f.is_finite() => {
            // Total-order encoding (matches f64::total_cmp, which sql_cmp
            // uses): flip all bits of negatives, set the sign bit of
            // non-negatives. -0.0 stays below +0.0.
            let b = f.to_bits();
            (if b >> 63 == 1 { !b } else { b | (1 << 63) }, KeyTy::Float)
        }
        _ => return None,
    };
    let enc = if desc { !raw } else { raw };
    if enc == u64::MAX {
        None
    } else {
        Some((enc, ty))
    }
}

/// Inverts [`encode_key`] exactly (bit-faithful, including `-0.0`).
fn decode_key(enc: u64, desc: bool, ty: KeyTy) -> Value {
    let raw = if desc { !enc } else { enc };
    match ty {
        KeyTy::Int => Value::Int((raw ^ (1 << 63)) as i64),
        KeyTy::Float => {
            let b = if raw >> 63 == 1 { raw & !(1 << 63) } else { !raw };
            Value::Float(f64::from_bits(b))
        }
    }
}

/// Bit-faithful output equality for the recompute diff: floats compare by
/// bits (so `-0.0` vs `0.0` or differing NaN payloads count as changes),
/// everything else structurally.
fn value_bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// Static (data-independent) per-call refresh plan.
enum FastPlan {
    /// `COUNT(*)`: pure frame arithmetic, no forest.
    CountStar,
    /// Order-statistic probe against a per-partition [`MstForest`].
    Forest {
        /// Canonical single ORDER BY criterion (the forest's key).
        keys: Vec<CanonicalSortKey>,
        /// Sort direction baked into the key encoding.
        desc: bool,
        /// Percentile fraction (0.5 for MEDIAN; unused by the rank family).
        p: f64,
        /// Which probe formula to run.
        kind: FuncKind,
    },
}

/// Splice-eligible constant ROWS bound.
#[derive(Debug, Clone, Copy)]
enum SpliceBound {
    Unbounded,
    Current,
    Prec(usize),
}

/// Splice-eligible frame: `ROWS BETWEEN {UNBOUNDED|x|0} PRECEDING AND
/// {CURRENT ROW|y PRECEDING}` with literal non-negative offsets. Both old
/// bounds are append-invariant and never reach appended positions, so old
/// outputs are unchanged by an end-append (frame exclusion only punches
/// holes *inside* those bounds and is therefore also safe).
#[derive(Debug, Clone, Copy)]
struct SpliceFrame {
    start: SpliceBound,
    end: SpliceBound,
}

/// Per-(partition × call) mergeable forest over encoded ORDER BY keys.
struct CallForest {
    forest: MstForest,
    /// Encoded key per partition position (sorted order).
    enc: Vec<u64>,
    /// Key domain; pinned by the first encoded value.
    ty: Option<KeyTy>,
}

/// Everything the engine holds per partition.
struct PartState {
    /// Sorted row indices (window ORDER BY, ties by table index).
    rows: Vec<usize>,
    /// Resolved frames over `rows`.
    frames: ResolvedFrames,
    /// Incrementally-maintained frame statistics.
    acc: StatsAcc,
    /// Current per-call strategy choices.
    choices: Vec<Strategy>,
    /// Current outputs, one vector per call, indexed by position.
    outs: Vec<Vec<Value>>,
    /// Whether this partition's data has stayed forest-eligible.
    fast_ok: bool,
    /// One forest per forest-planned call (None once ineligible).
    forests: Vec<Option<CallForest>>,
    /// Persistent artifact cache, kept sound via the invalidation hooks.
    cache: ArtifactCache,
}

/// A window query held open against a growing table (the delta API).
///
/// Built by [`WindowQuery::begin_incremental`]; feed it batches with
/// [`IncrementalEngine::append`] and read refreshed results with
/// [`IncrementalEngine::output_table`]. Results are always bit-identical to
/// re-running [`WindowQuery::execute_with`] on the grown table with the same
/// options.
///
/// ```
/// use holistic_window::prelude::*;
///
/// let base = Table::new(vec![("x", Column::ints(vec![3, 1, 2]))]).unwrap();
/// let query = WindowQuery::over(
///     WindowSpec::new()
///         .order_by(vec![SortKey::asc(col("x"))])
///         .frame(FrameSpec::rows(FrameBound::Preceding(lit(1i64)), FrameBound::CurrentRow)),
/// )
/// .call(FunctionCall::median(col("x")).named("med"));
///
/// let mut engine = query.begin_incremental(&base, ExecOptions::default()).unwrap();
/// let batch = Table::new(vec![("x", Column::ints(vec![5, 4]))]).unwrap();
/// let res = engine.append(&batch).unwrap();
/// assert_eq!(res.changed_outputs, vec![3, 4]); // only the new rows changed
/// assert_eq!(
///     engine.output_table().unwrap().column("med").unwrap().to_values(),
///     query.execute(&engine.table().clone()).unwrap().column("med").unwrap().to_values(),
/// );
/// ```
pub struct IncrementalEngine {
    query: WindowQuery,
    opts: ExecOptions,
    plan: QueryPlan,
    fast_plans: Vec<Option<FastPlan>>,
    splice: Option<SpliceFrame>,
    /// True when every call has a fast plan *and* the frame is spliceable.
    all_fast: bool,
    table: Table,
    /// Partition routing: key hash → candidate partition ids.
    route: FxHashMap<u64, Vec<usize>>,
    /// Representative PARTITION BY key values per partition.
    rep_keys: Vec<Vec<Value>>,
    parts: Vec<PartState>,
    /// Hoisted key columns (window ORDER BY + every planned inner ORDER BY),
    /// extended in place on append. Must stay uniquely owned between appends
    /// — see the seed-release protocol in `compute_rows`.
    hoisted: FxHashMap<Vec<CanonicalSortKey>, Arc<KeyColumns>>,
    /// Rows covered by every `hoisted` entry.
    hoisted_rows: usize,
    window_order: Vec<CanonicalSortKey>,
    /// Empty key columns standing in for an empty window ORDER BY.
    trivial_keys: Arc<KeyColumns>,
    kernel: AtomicProbeKernel,
    vm: AtomicExprVm,
    /// Budget governor shared by every partition's persistent cache (and by
    /// the per-call caches of private mode), so resident artifact bytes are
    /// bounded across the engine's whole lifetime, not per recompute.
    gov: Arc<BudgetGovernor>,
    poisoned: bool,
}

impl WindowQuery {
    /// Opens this query incrementally over `table` (the delta API): the
    /// returned engine evaluates the query once, then maintains its outputs
    /// across [`IncrementalEngine::append`] batches.
    pub fn begin_incremental(&self, table: &Table, opts: ExecOptions) -> Result<IncrementalEngine> {
        IncrementalEngine::new(self.clone(), table.clone(), opts)
    }
}

impl IncrementalEngine {
    /// Builds the engine and runs the initial evaluation (equivalent to one
    /// [`WindowQuery::execute_with`] pass, plus forest construction).
    pub fn new(query: WindowQuery, table: Table, opts: ExecOptions) -> Result<IncrementalEngine> {
        for call in &query.calls {
            call.validate()?;
        }
        let plan = plan_query(&query.spec, &query.calls);
        let fast_plans: Vec<Option<FastPlan>> =
            query.calls.iter().map(|c| fast_plan(&query, c)).collect();
        let splice = splice_frame(&query.spec);
        let all_fast = splice.is_some() && fast_plans.iter().all(|p| p.is_some());
        let window_order = canonical_order(&query.spec.order_by);
        let trivial_keys =
            Arc::new(KeyColumns::evaluate(&table, &[]).expect("empty criteria list cannot fail"));
        let mut engine = IncrementalEngine {
            query,
            opts,
            plan,
            fast_plans,
            splice,
            all_fast,
            table,
            route: FxHashMap::default(),
            rep_keys: Vec::new(),
            parts: Vec::new(),
            hoisted: FxHashMap::default(),
            hoisted_rows: 0,
            window_order,
            trivial_keys,
            kernel: AtomicProbeKernel::default(),
            vm: AtomicExprVm::new(),
            gov: Arc::new(BudgetGovernor::new(opts.budget)),
            poisoned: false,
        };
        // The initial ingest always recomputes: a from-scratch sort + batch
        // forest build is far cheaper than n splice steps would be.
        engine.ingest(0, false)?;
        Ok(engine)
    }

    /// The grown table as the engine sees it.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// True once an error mid-append left derived state unusable; every
    /// subsequent call errors. Rebuild with [`WindowQuery::begin_incremental`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Spill telemetry of the engine's budget governor: bytes spilled,
    /// evictions, re-faults and the resident/peak gauges across the whole
    /// engine lifetime (all appends).
    pub fn spill_stats(&self) -> SpillStats {
        self.gov.snapshot()
    }

    /// Current per-partition frame statistics (first-appearance order),
    /// maintained incrementally by [`StatsAcc`].
    pub fn partition_stats(&self) -> Vec<PartitionStats> {
        self.parts.iter().map(|p| p.acc.stats()).collect()
    }

    /// Histogram of current per-(partition × call) strategy choices, indexed
    /// by [`Strategy::index`]. Comparable against the `decisions` histogram
    /// of a from-scratch profiled execution.
    pub fn strategy_decisions(&self) -> [u64; 5] {
        let mut h = [0u64; 5];
        for ps in &self.parts {
            for s in &ps.choices {
                h[s.index()] += 1;
            }
        }
        h
    }

    /// Ingests one batch of rows and refreshes the query's outputs.
    ///
    /// `batch` must carry exactly the table's columns (name, order and
    /// push-compatible types). A batch rejected by that validation leaves the
    /// engine untouched and usable; an error past that point (a query error
    /// surfaced by the new data, exactly as [`WindowQuery::execute_with`]
    /// would report on the grown table) poisons the engine.
    pub fn append(&mut self, batch: &Table) -> Result<AppendResult> {
        if self.poisoned {
            return Err(Error::Unsupported(
                "incremental engine is poisoned by an earlier error; rebuild it".into(),
            ));
        }
        let from_row = self.table.num_rows();
        self.table.append_rows(batch)?;
        match self.ingest(from_row, true) {
            Ok(res) => Ok(res),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// The refreshed output table: one column per call, in the original row
    /// order of the grown input (the same scatter as the batch executor).
    pub fn output_table(&self) -> Result<Table> {
        if self.poisoned {
            return Err(Error::Unsupported(
                "incremental engine is poisoned by an earlier error; rebuild it".into(),
            ));
        }
        let n = self.table.num_rows();
        let mut out = Table::empty();
        for (ci, call) in self.query.calls.iter().enumerate() {
            let mut values = vec![Value::Null; n];
            for ps in &self.parts {
                for (pos, &row) in ps.rows.iter().enumerate() {
                    values[row] = ps.outs[ci][pos].clone();
                }
            }
            out.add_column(call.output_name.clone(), Column::from_values(&values)?)?;
        }
        Ok(out)
    }

    /// Routes rows `from_row..` to partitions, creating new ones as needed.
    /// Returns `(pid, new rows in table order)` in first-touch order.
    fn route_rows(
        &mut self,
        from_row: usize,
        profile: &mut AppendProfile,
    ) -> Result<Vec<(usize, Vec<usize>)>> {
        let n = self.table.num_rows();
        let ncalls = self.query.calls.len();
        let mut touched: Vec<usize> = Vec::new();
        let mut batches: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        let new_part = |parts: &mut Vec<PartState>, profile: &mut AppendProfile| -> usize {
            let pid = parts.len();
            parts.push(PartState {
                rows: Vec::new(),
                frames: ResolvedFrames {
                    bounds: Vec::new(),
                    exclusion: self.query.spec.frame.exclusion,
                    peer_start: Vec::new(),
                    peer_end: Vec::new(),
                },
                acc: StatsAcc::new(),
                choices: Vec::new(),
                outs: vec![Vec::new(); ncalls],
                fast_ok: true,
                forests: self
                    .fast_plans
                    .iter()
                    .map(|fp| match fp {
                        Some(FastPlan::Forest { .. }) => Some(CallForest {
                            forest: MstForest::new(self.opts.params),
                            enc: Vec::new(),
                            ty: None,
                        }),
                        _ => None,
                    })
                    .collect(),
                cache: ArtifactCache::new(Arc::clone(&self.gov)),
            });
            profile.new_partitions += 1;
            pid
        };
        if self.query.spec.partition_by.is_empty() {
            if self.parts.is_empty() {
                let pid = new_part(&mut self.parts, profile);
                self.rep_keys.push(Vec::new());
                debug_assert_eq!(pid, 0);
            }
            touched.push(0);
            batches.insert(0, (from_row..n).collect());
        } else {
            let bound: Vec<_> = self
                .query
                .spec
                .partition_by
                .iter()
                .map(|e| e.bind(&self.table))
                .collect::<Result<Vec<_>>>()?;
            for row in from_row..n {
                let rk: Vec<Value> =
                    bound.iter().map(|b| b.eval(&self.table, row)).collect::<Result<Vec<_>>>()?;
                let h = hash_values(&rk);
                let candidates = self.route.entry(h).or_default();
                let mut found = None;
                for &pid in candidates.iter() {
                    let rep = &self.rep_keys[pid];
                    if rep.len() == rk.len() && rep.iter().zip(&rk).all(|(a, b)| a.sql_eq(b)) {
                        found = Some(pid);
                        break;
                    }
                }
                let pid = match found {
                    Some(pid) => pid,
                    None => {
                        let pid = new_part(&mut self.parts, profile);
                        candidates.push(pid);
                        self.rep_keys.push(rk);
                        pid
                    }
                };
                let slot = batches.entry(pid).or_default();
                if slot.is_empty() {
                    touched.push(pid);
                }
                slot.push(row);
            }
        }
        Ok(touched
            .into_iter()
            .map(|pid| {
                let rows = batches.remove(&pid).unwrap_or_default();
                (pid, rows)
            })
            .collect())
    }

    /// Extends every hoisted key column to cover the grown table and
    /// evaluates any still-missing ones. Mirrors the batch executor's
    /// hoisting (skipped entirely while the table is empty).
    fn refresh_hoisted(&mut self) -> Result<()> {
        let n = self.table.num_rows();
        if n == 0 {
            return Ok(());
        }
        if self.hoisted_rows < n {
            for (ks, kc) in self.hoisted.iter_mut() {
                // Uniquely owned between appends (seeds are released after
                // every recompute), so this extends in place, O(b).
                Arc::make_mut(kc).extend(&self.table, &sort_keys_of(ks), self.hoisted_rows)?;
            }
        }
        if !self.window_order.is_empty() && !self.hoisted.contains_key(&self.window_order) {
            let kc = Arc::new(KeyColumns::evaluate(&self.table, &self.query.spec.order_by)?);
            self.hoisted.insert(self.window_order.clone(), kc);
        }
        for key in &self.plan.prebuild {
            if let ArtifactKey::InnerKeys(ks) = key {
                if !self.hoisted.contains_key(ks) {
                    let kc = Arc::new(KeyColumns::evaluate(&self.table, &sort_keys_of(ks))?);
                    self.hoisted.insert(ks.clone(), kc);
                }
            }
        }
        self.hoisted_rows = n;
        Ok(())
    }

    /// The window ORDER BY key columns (a cloned handle).
    fn window_keys(&self) -> Arc<KeyColumns> {
        if self.window_order.is_empty() {
            Arc::clone(&self.trivial_keys)
        } else {
            Arc::clone(&self.hoisted[&self.window_order])
        }
    }

    /// Shared ingest for construction (`allow_fast = false`) and appends.
    fn ingest(&mut self, from_row: usize, allow_fast: bool) -> Result<AppendResult> {
        let mut profile =
            AppendProfile { appended_rows: self.table.num_rows() - from_row, ..Default::default() };
        let mut changed: Vec<usize> = Vec::new();
        if profile.appended_rows > 0 {
            self.refresh_hoisted()?;
            let touched = self.route_rows(from_row, &mut profile)?;
            profile.touched_partitions = touched.len();
            let wk = self.window_keys();
            for (pid, mut new_rows) in touched {
                sort_permutation(&wk, &mut new_rows, self.opts.parallel);
                let m_old = self.parts[pid].rows.len();
                let end_append = m_old == 0
                    || wk.cmp_rows(new_rows[0], self.parts[pid].rows[m_old - 1]) != Ordering::Less;
                self.parts[pid].rows.extend_from_slice(&new_rows);
                let fast = allow_fast
                    && end_append
                    && self.all_fast
                    && self.parts[pid].fast_ok
                    && self.try_fast(pid, m_old, &wk, &mut profile)?;
                if fast {
                    profile.spliced_partitions += 1;
                    profile.fast_path_rows += new_rows.len();
                    changed.extend_from_slice(&new_rows);
                } else {
                    changed.extend(self.recompute_partition(pid, m_old, &wk, &mut profile)?);
                }
            }
        }
        for ps in &self.parts {
            for cf in ps.forests.iter().flatten() {
                profile.forest_runs += cf.forest.num_runs();
                profile.forest_merges += cf.forest.merges();
                profile.forest_rebuilt_elements += cf.forest.rebuilt_elements();
                profile.forest_resident_bytes += cf.forest.arena_bytes() as u64;
            }
        }
        let spill = self.gov.snapshot();
        profile.resident_artifact_bytes = spill.resident;
        profile.peak_resident_artifact_bytes = spill.peak_resident;
        changed.sort_unstable();
        changed.dedup();
        Ok(AppendResult { changed_outputs: changed, profile })
    }

    /// The O(b) splice refresh. Returns `Ok(false)` when the batch's data is
    /// forest-ineligible (NULL / mixed-type / extreme keys) — the partition
    /// is then permanently demoted to the recompute path, which the caller
    /// runs next (safe: recompute rebuilds all derived state from `rows`,
    /// and the extended `rows` equal their from-scratch sort for an
    /// end-append).
    fn try_fast(
        &mut self,
        pid: usize,
        m_old: usize,
        wk: &Arc<KeyColumns>,
        profile: &mut AppendProfile,
    ) -> Result<bool> {
        let m = self.parts[pid].rows.len();

        // Phase 1 (read-only): encode the batch's keys for every forest call.
        let mut new_encs: Vec<Option<(Vec<u64>, KeyTy)>> =
            Vec::with_capacity(self.fast_plans.len());
        for (ci, fp) in self.fast_plans.iter().enumerate() {
            let Some(FastPlan::Forest { keys, desc, .. }) = fp else {
                new_encs.push(None);
                continue;
            };
            let kc = Arc::clone(&self.hoisted[keys]);
            let ps = &self.parts[pid];
            let mut ty = ps.forests[ci].as_ref().and_then(|cf| cf.ty);
            let mut encs = Vec::with_capacity(m - m_old);
            for pos in m_old..m {
                let row = ps.rows[pos];
                let Some((v, kdesc)) = kc.single_key(row) else {
                    return Ok(self.demote(pid));
                };
                debug_assert_eq!(kdesc, *desc);
                let Some((enc, vty)) = encode_key(v, *desc) else {
                    return Ok(self.demote(pid));
                };
                if *ty.get_or_insert(vty) != vty {
                    return Ok(self.demote(pid));
                }
                encs.push(enc);
            }
            new_encs.push(Some((encs, ty.expect("batch is non-empty"))));
        }

        // Phase 2: splice frames and peer groups.
        let sp = self.splice.expect("fast path requires a spliceable frame");
        {
            let ps = &mut self.parts[pid];
            for i in m_old..m {
                let start = match sp.start {
                    SpliceBound::Unbounded => 0,
                    SpliceBound::Current => i,
                    SpliceBound::Prec(off) => i.saturating_sub(off.min(m)),
                };
                let end = match sp.end {
                    SpliceBound::Current => i + 1,
                    SpliceBound::Prec(off) => (i + 1).saturating_sub(off.min(m)),
                    SpliceBound::Unbounded => unreachable!("no UNBOUNDED frame end splice"),
                };
                ps.frames.bounds.push((start, end.max(start).min(m)));
            }
            // Peer groups: the batch may extend the last old group.
            let g0 = if m_old > 0 && wk.rows_equal(ps.rows[m_old], ps.rows[m_old - 1]) {
                ps.frames.peer_start[m_old - 1]
            } else {
                m_old
            };
            ps.frames.peer_start.truncate(g0);
            ps.frames.peer_end.truncate(g0);
            let mut g = g0;
            while g < m {
                let mut e = g + 1;
                while e < m && wk.rows_equal(ps.rows[e], ps.rows[g]) {
                    e += 1;
                }
                for _ in g..e {
                    ps.frames.peer_start.push(g);
                    ps.frames.peer_end.push(e);
                }
                g = e;
            }
            ps.acc.extend(&ps.frames, m_old);
        }

        // Phase 3: re-plan strategies from the updated statistics. The fast
        // path's own probes don't consult the choices (outputs are invariant
        // under strategy), but the next recompute — and the engine's
        // decision telemetry — must see current ones.
        let stats = self.parts[pid].acc.stats();
        let choices: Vec<Strategy> = self
            .plan
            .calls
            .iter()
            .map(|cp| choose(self.opts.strategy, cp.class, &stats, &self.opts.cost_model))
            .collect();
        if choices != self.parts[pid].choices {
            profile.strategy_replans += 1;
            self.parts[pid].choices = choices;
        }

        // Phase 4: grow the forests and probe outputs for the new rows.
        for (ci, fp) in self.fast_plans.iter().enumerate() {
            let ps = &mut self.parts[pid];
            match fp {
                Some(FastPlan::CountStar) => {
                    for pos in m_old..m {
                        ps.outs[ci].push(Value::Int(ps.frames.range_set(pos).count() as i64));
                    }
                }
                Some(FastPlan::Forest { desc, p, kind, .. }) => {
                    let (encs, ty) =
                        new_encs[ci].as_ref().expect("phase 1 encoded every forest call");
                    let cf = ps.forests[ci].as_mut().expect("fast_ok partitions keep forests");
                    cf.enc.extend_from_slice(encs);
                    cf.forest.append(encs);
                    cf.ty = Some(*ty);
                    let mut hint = None;
                    for pos in m_old..m {
                        let pieces = ps.frames.range_set(pos);
                        ps.outs[ci].push(probe_value(
                            *kind, *p, &cf.forest, &cf.enc, &pieces, pos, *desc, *ty, &mut hint,
                        ));
                    }
                }
                None => unreachable!("all_fast requires a plan per call"),
            }
        }
        Ok(true)
    }

    /// Demotes a partition off the fast path permanently (data became
    /// forest-ineligible); its forests are dropped.
    fn demote(&mut self, pid: usize) -> bool {
        let ps = &mut self.parts[pid];
        ps.fast_ok = false;
        for f in ps.forests.iter_mut() {
            *f = None;
        }
        false
    }

    /// Full per-partition refresh: re-sort, re-resolve, re-evaluate (exactly
    /// the batch executor's pipeline), then diff outputs against the
    /// previous state. Returns the changed table rows.
    fn recompute_partition(
        &mut self,
        pid: usize,
        m_old: usize,
        wk: &Arc<KeyColumns>,
        profile: &mut AppendProfile,
    ) -> Result<Vec<usize>> {
        // Snapshot old positions for the diff, then take the rows (the new
        // ones are already appended, possibly splice-sorted — a full re-sort
        // subsumes any partial state).
        let old_index: FxHashMap<usize, usize> =
            self.parts[pid].rows[..m_old].iter().enumerate().map(|(pos, &r)| (r, pos)).collect();
        let mut rows = std::mem::take(&mut self.parts[pid].rows);
        sort_permutation(wk, &mut rows, self.opts.parallel);
        let mut vm_stats = ExprVmStats::default();
        let frames = resolve_frames_opts(
            &self.table,
            &rows,
            wk,
            &self.query.spec.frame,
            self.opts.compiled_exprs,
            &mut vm_stats,
        )?;
        self.vm.absorb(&vm_stats);
        let mut acc = StatsAcc::new();
        acc.extend(&frames, 0);
        let stats = acc.stats();
        // Same pressure surcharge as the batch executor, so the engine
        // re-plans to the choices a from-scratch run would make.
        let est_tree_bytes = (holistic_core::mst_arena_len(rows.len(), self.opts.params)
            * if holistic_core::index::fits_u32(rows.len() + 1) { 4 } else { 8 })
            as u64;
        let model = self.opts.cost_model.under_memory_pressure(est_tree_bytes, self.opts.budget);
        let choices: Vec<Strategy> = self
            .plan
            .calls
            .iter()
            .map(|cp| choose(self.opts.strategy, cp.class, &stats, &model))
            .collect();
        if choices != self.parts[pid].choices {
            profile.strategy_replans += 1;
        }
        let (outs, evicted, built) = self.compute_rows(&rows, &frames, &choices, pid)?;
        profile.evicted_artifacts += evicted;
        profile.artifact_bytes_built += built;

        let mut changed: Vec<usize> = Vec::new();
        {
            let old_outs = &self.parts[pid].outs;
            for (pos, &row) in rows.iter().enumerate() {
                match old_index.get(&row) {
                    None => changed.push(row),
                    Some(&op) => {
                        if outs
                            .iter()
                            .zip(old_outs)
                            .any(|(nc, oc)| !value_bits_eq(&nc[pos], &oc[op]))
                        {
                            changed.push(row);
                        }
                    }
                }
            }
        }

        // Rebuild forests from the fresh sort (batch build: one run), unless
        // the query can never splice or the partition is demoted.
        let mut forests: Vec<Option<CallForest>> =
            (0..self.query.calls.len()).map(|_| None).collect();
        if self.all_fast && self.parts[pid].fast_ok {
            'calls: for (ci, fp) in self.fast_plans.iter().enumerate() {
                let Some(FastPlan::Forest { keys, desc, .. }) = fp else { continue };
                let kc = &self.hoisted[keys];
                let mut ty: Option<KeyTy> = None;
                let mut enc = Vec::with_capacity(rows.len());
                for &row in &rows {
                    let eligible = kc
                        .single_key(row)
                        .and_then(|(v, _)| encode_key(v, *desc))
                        .filter(|(_, vty)| *ty.get_or_insert(*vty) == *vty);
                    match eligible {
                        Some((e, _)) => enc.push(e),
                        None => {
                            self.parts[pid].fast_ok = false;
                            forests.iter_mut().for_each(|f| *f = None);
                            break 'calls;
                        }
                    }
                }
                let mut forest = MstForest::new(self.opts.params);
                forest.append(&enc);
                forests[ci] = Some(CallForest { forest, enc, ty });
            }
        }

        let ps = &mut self.parts[pid];
        profile.recomputed_partitions += 1;
        profile.fallback_rows += rows.len();
        ps.rows = rows;
        ps.frames = frames;
        ps.acc = acc;
        ps.choices = choices;
        ps.outs = outs;
        ps.forests = forests;
        Ok(changed)
    }

    /// Evaluates every call over one sorted partition, replicating the batch
    /// executor's dispatch exactly (direct / shared cache / private caches)
    /// so outputs stay bit-identical under every [`ExecOptions`] config.
    /// Returns the outputs, the number of stale artifacts evicted from the
    /// partition's persistent cache, and the artifact bytes built.
    fn compute_rows(
        &self,
        rows: &[usize],
        frames: &ResolvedFrames,
        choices: &[Strategy],
        pid: usize,
    ) -> Result<(Vec<Vec<Value>>, usize, u64)> {
        let cache = &self.parts[pid].cache;
        // Positions shifted, so every position-space artifact is stale:
        // invalidate up front (the generation bump is what downstream
        // holders would check), then re-seed the hoisted key columns.
        let g0 = cache.generation();
        let evicted = cache.invalidate_all();
        debug_assert_eq!(cache.generation(), g0 + 1);

        let within = self.opts.parallel;
        let params = if within { self.opts.params } else { self.opts.params.serial() };
        let all_naive = choices.iter().all(|&s| s == Strategy::Naive);
        let dctx = DirectCtx { table: &self.table, rows, frames, inner_keys: &self.hoisted };
        let mut outs: Vec<Vec<Value>> = Vec::with_capacity(self.query.calls.len());
        let mut built: u64 = 0;
        if all_naive {
            for (call, cp) in self.query.calls.iter().zip(&self.plan.calls) {
                outs.push(direct::evaluate(&dctx, call, cp)?);
            }
        } else if self.opts.share_artifacts {
            for (ks, kc) in &self.hoisted {
                cache.seed(ArtifactKey::InnerKeys(ks.clone()), Arc::clone(kc));
            }
            let ctx = Ctx {
                table: &self.table,
                rows,
                frames,
                parallel: within,
                params,
                cache,
                cursors: self.opts.probe.cursors,
                kernel: &self.kernel,
                block_probes: self.opts.probe.block,
                compiled_exprs: self.opts.compiled_exprs,
                vm: &self.vm,
            };
            for (cp, &s) in self.plan.calls.iter().zip(choices) {
                if s == Strategy::Mst {
                    for key in cp.keys.eager() {
                        artifacts::force(&ctx, key)?;
                    }
                }
            }
            for ((call, cp), &s) in self.query.calls.iter().zip(&self.plan.calls).zip(choices) {
                outs.push(match s {
                    Strategy::Mst => evaluate_call(&ctx, call, cp)?,
                    Strategy::Naive => direct::evaluate(&dctx, call, cp)?,
                    other => alt::evaluate(&ctx, call, cp, other)?,
                });
            }
            // Release the key seeds so the engine's hoisted Arcs stay
            // uniquely owned and extend in place on the next append.
            cache.invalidate_where(|k| matches!(k, ArtifactKey::InnerKeys(_)));
        } else {
            for ((call, cp), &s) in self.query.calls.iter().zip(&self.plan.calls).zip(choices) {
                if s == Strategy::Naive {
                    outs.push(direct::evaluate(&dctx, call, cp)?);
                    continue;
                }
                // Private mode: a fresh cache per call, as in the executor.
                let call_cache = ArtifactCache::new(Arc::clone(&self.gov));
                for (ks, kc) in &self.hoisted {
                    call_cache.seed(ArtifactKey::InnerKeys(ks.clone()), Arc::clone(kc));
                }
                let ctx = Ctx {
                    table: &self.table,
                    rows,
                    frames,
                    parallel: within,
                    params,
                    cache: &call_cache,
                    cursors: self.opts.probe.cursors,
                    kernel: &self.kernel,
                    block_probes: self.opts.probe.block,
                    compiled_exprs: self.opts.compiled_exprs,
                    vm: &self.vm,
                };
                outs.push(match s {
                    Strategy::Mst => evaluate_call(&ctx, call, cp)?,
                    other => alt::evaluate(&ctx, call, cp, other)?,
                });
                built += call_cache.take_footprints().iter().map(|&(_, b)| b as u64).sum::<u64>();
            }
        }
        // Drain the footprints into the append profile (draining also keeps
        // the per-partition cache's ledger from pooling across appends).
        built += cache.take_footprints().iter().map(|&(_, b)| b as u64).sum::<u64>();
        Ok((outs, evicted, built))
    }
}

/// Derives a call's static fast plan, or `None` when only the recompute
/// path can serve it. Mirrors the probe formulas in `eval/rank.rs` and
/// `eval/select_based.rs` — any situation those handle specially (FILTER,
/// multi-key orders, data-dependent fractions) is declared ineligible here.
fn fast_plan(query: &WindowQuery, call: &FunctionCall) -> Option<FastPlan> {
    use FuncKind::*;
    if call.filter.is_some() {
        return None;
    }
    match call.kind {
        CountStar => Some(FastPlan::CountStar),
        RowNumber | Rank | PercentRank | CumeDist => {
            let keys = canonical_order(call.rank_order(&query.spec));
            forest_plan(keys, 0.0, call.kind)
        }
        PercentileDisc | PercentileCont | Median => {
            let p = if call.kind == Median {
                0.5
            } else {
                match call.args.first() {
                    Some(Expr::Lit(v)) => match v.as_f64() {
                        Some(p) if (0.0..=1.0).contains(&p) => p,
                        _ => return None,
                    },
                    _ => return None,
                }
            };
            forest_plan(canonical_order(&call.inner_order), p, call.kind)
        }
        _ => None,
    }
}

fn forest_plan(keys: Vec<CanonicalSortKey>, p: f64, kind: FuncKind) -> Option<FastPlan> {
    if keys.len() != 1 {
        return None;
    }
    let desc = sort_keys_of(&keys)[0].desc;
    Some(FastPlan::Forest { keys, desc, p, kind })
}

/// Derives the splice plan when the frame is a constant monotonic ROWS
/// frame. Old rows' bounds are then append-invariant (offsets are clamped to
/// the partition size `m`, but for bounds that only look backwards the clamp
/// never changes a result) and never reach appended positions.
fn splice_frame(spec: &crate::spec::WindowSpec) -> Option<SpliceFrame> {
    if spec.frame.mode != FrameMode::Rows {
        return None;
    }
    let lit_off = |e: &Expr| -> Option<usize> {
        match e {
            Expr::Lit(Value::Int(x)) if *x >= 0 => usize::try_from(*x).ok(),
            _ => None,
        }
    };
    let start = match &spec.frame.start {
        FrameBound::UnboundedPreceding => SpliceBound::Unbounded,
        FrameBound::CurrentRow => SpliceBound::Current,
        FrameBound::Preceding(e) => SpliceBound::Prec(lit_off(e)?),
        _ => return None,
    };
    let end = match &spec.frame.end {
        FrameBound::CurrentRow => SpliceBound::Current,
        FrameBound::Preceding(e) => SpliceBound::Prec(lit_off(e)?),
        _ => return None,
    };
    Some(SpliceFrame { start, end })
}

/// Restricts a range set to positions `< hi`.
fn clip_below(rs: &RangeSet, hi: usize) -> RangeSet {
    let mut out = RangeSet::empty();
    for (a, b) in rs.iter() {
        if a >= hi {
            break;
        }
        out.push(a, b.min(hi));
    }
    out
}

/// One forest probe: computes a forest-eligible call's output for new
/// position `pos` over its frame `pieces`. Each formula mirrors its batch
/// evaluator bit for bit (`eval/rank.rs`, `eval/select_based.rs`).
#[allow(clippy::too_many_arguments)] // a per-row probe kernel, not an API
fn probe_value(
    kind: FuncKind,
    p: f64,
    forest: &MstForest,
    enc: &[u64],
    pieces: &RangeSet,
    pos: usize,
    desc: bool,
    ty: KeyTy,
    hint: &mut Option<u64>,
) -> Value {
    use FuncKind::*;
    let e = enc[pos];
    match kind {
        RowNumber => {
            // Position `pos`'s dense code orders by (key, position); rows
            // below it are the strictly-smaller keys plus equal keys at
            // earlier positions.
            let below = forest.count_below(pieces, e);
            let before = clip_below(pieces, pos);
            let eq_before = forest.count_leq(&before, e) - forest.count_below(&before, e);
            Value::Int((below + eq_before + 1) as i64)
        }
        Rank => Value::Int((forest.count_below(pieces, e) + 1) as i64),
        PercentRank => {
            let s = pieces.count();
            if s == 0 {
                return Value::Null;
            }
            let rank = forest.count_below(pieces, e) + 1;
            Value::Float(if s <= 1 { 0.0 } else { (rank - 1) as f64 / (s - 1) as f64 })
        }
        CumeDist => {
            let s = pieces.count();
            if s == 0 {
                return Value::Null;
            }
            Value::Float(forest.count_leq(pieces, e) as f64 / s as f64)
        }
        PercentileDisc | Median => {
            let s = pieces.count();
            if s == 0 {
                return Value::Null;
            }
            let j = ((p * s as f64).ceil() as usize).clamp(1, s);
            // Frames slide by one row between consecutive probes, so the
            // previous answer is almost always still (near) the percentile:
            // seed the forest's rank bisection with it.
            let v = forest.select_from(pieces, j - 1, *hint).expect("rank within frame size");
            *hint = Some(v);
            decode_key(v, desc, ty)
        }
        PercentileCont => {
            let s = pieces.count();
            if s == 0 {
                return Value::Null;
            }
            let rn = p * (s - 1) as f64;
            let lo = rn.floor() as usize;
            let hi = rn.ceil() as usize;
            let mut at = |j: usize| -> f64 {
                let v = forest.select_from(pieces, j, *hint).expect("rank within frame size");
                *hint = Some(v);
                decode_key(v, desc, ty).as_f64().expect("numeric forest key")
            };
            if lo == hi {
                Value::Float(at(lo))
            } else {
                let (x, y) = (at(lo), at(hi));
                Value::Float(x + (y - x) * (rn - lo as f64))
            }
        }
        _ => unreachable!("not a forest-planned call"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_keys_encode_order_isomorphically() {
        let vals = [i64::MIN, -5, -1, 0, 1, 7, i64::MAX - 1];
        for w in vals.windows(2) {
            for desc in [false, true] {
                // The per-direction extreme (i64::MIN descending) is
                // ineligible; order/roundtrip only applies to encodable keys.
                let (Some((a, _)), Some((b, _))) =
                    (encode_key(&Value::Int(w[0]), desc), encode_key(&Value::Int(w[1]), desc))
                else {
                    continue;
                };
                assert_eq!(a < b, !desc, "{:?} desc={desc}", w);
                assert_eq!(decode_key(a, desc, KeyTy::Int), Value::Int(w[0]));
            }
        }
        // The forest reserves u64::MAX: the extreme key per direction bails.
        assert!(encode_key(&Value::Int(i64::MAX), false).is_none());
        assert!(encode_key(&Value::Int(i64::MIN), true).is_none());
    }

    #[test]
    fn float_keys_encode_total_order() {
        let vals = [f64::NEG_INFINITY + 1.0, -2.5, -0.0, 0.0, 1.5, 1e300];
        let vals: Vec<f64> = vals.into_iter().filter(|f| f.is_finite()).collect();
        for w in vals.windows(2) {
            let (a, _) = encode_key(&Value::Float(w[0]), false).unwrap();
            let (b, _) = encode_key(&Value::Float(w[1]), false).unwrap();
            assert!(a < b, "{:?}", w);
        }
        // Bit-faithful roundtrip, including the sign of zero.
        for f in vals {
            for desc in [false, true] {
                let (e, _) = encode_key(&Value::Float(f), desc).unwrap();
                match decode_key(e, desc, KeyTy::Float) {
                    Value::Float(g) => assert_eq!(f.to_bits(), g.to_bits()),
                    other => panic!("expected float, got {other:?}"),
                }
            }
        }
        assert!(encode_key(&Value::Float(f64::NAN), false).is_none());
        assert!(encode_key(&Value::Float(f64::INFINITY), false).is_none());
        assert!(encode_key(&Value::Null, false).is_none());
        assert!(encode_key(&Value::str("x"), false).is_none());
    }

    #[test]
    fn splice_eligibility() {
        use crate::expr::lit;
        use crate::frame::FrameSpec;
        use crate::spec::WindowSpec;
        let spec = |f: FrameSpec| WindowSpec { frame: f, ..WindowSpec::new() };
        let ok = FrameSpec::rows(FrameBound::Preceding(lit(3i64)), FrameBound::CurrentRow);
        assert!(splice_frame(&spec(ok)).is_some());
        let unbounded =
            FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::Preceding(lit(1i64)));
        assert!(splice_frame(&spec(unbounded)).is_some());
        let following = FrameSpec::rows(FrameBound::CurrentRow, FrameBound::Following(lit(1i64)));
        assert!(splice_frame(&spec(following)).is_none());
        let per_row =
            FrameSpec::rows(FrameBound::Preceding(crate::expr::col("x")), FrameBound::CurrentRow);
        assert!(splice_frame(&spec(per_row)).is_none());
        let range = FrameSpec::range(FrameBound::Preceding(lit(3i64)), FrameBound::CurrentRow);
        assert!(splice_frame(&spec(range)).is_none());
    }
}
