//! Value hashing for distinct-aggregate preprocessing.
//!
//! §6.7: "To make the sorting step independent of the data types used in the
//! query, we do not sort the values themselves but only their hashes. In the
//! absence of hash collisions, this does not deteriorate the runtime." A
//! 64-bit collision among the ≤ 2³² rows of one partition is astronomically
//! unlikely; the test-suite nevertheless cross-checks the hashed path against
//! an exact-key oracle.

use crate::value::Value;
use rustc_hash::FxHasher;
use std::hash::{Hash, Hasher};

/// Hashes one value with SQL equality semantics: all NULLs share one hash,
/// and `Int(x)` hashes like `Float(x as f64)` when the float is integral, so
/// cross-type numeric equality stays consistent with [`Value::sql_eq`].
pub fn hash_value(v: &Value) -> u64 {
    let mut h = FxHasher::default();
    match v {
        Value::Null => 0u8.hash(&mut h),
        Value::Int(x) => {
            1u8.hash(&mut h);
            (*x as f64).to_bits().hash(&mut h);
        }
        Value::Float(x) => {
            1u8.hash(&mut h);
            // Normalize -0.0 to 0.0 so equal values hash equally.
            let x = if *x == 0.0 { 0.0 } else { *x };
            x.to_bits().hash(&mut h);
        }
        Value::Str(s) => {
            2u8.hash(&mut h);
            s.as_bytes().hash(&mut h);
        }
        Value::Date(d) => {
            3u8.hash(&mut h);
            d.hash(&mut h);
        }
        Value::Bool(b) => {
            4u8.hash(&mut h);
            b.hash(&mut h);
        }
    }
    h.finish()
}

/// Hashes a composite key (partition keys).
pub fn hash_values(vs: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in vs {
        hash_value(v).hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_value(&Value::Int(5)), hash_value(&Value::Int(5)));
        assert_eq!(hash_value(&Value::Null), hash_value(&Value::Null));
        assert_eq!(hash_value(&Value::str("ab")), hash_value(&Value::str("ab")));
    }

    #[test]
    fn cross_type_numeric_equality_is_consistent() {
        assert_eq!(hash_value(&Value::Int(3)), hash_value(&Value::Float(3.0)));
        assert_eq!(hash_value(&Value::Float(0.0)), hash_value(&Value::Float(-0.0)));
    }

    #[test]
    fn different_values_usually_differ() {
        assert_ne!(hash_value(&Value::Int(1)), hash_value(&Value::Int(2)));
        assert_ne!(hash_value(&Value::str("a")), hash_value(&Value::str("b")));
        assert_ne!(hash_value(&Value::Null), hash_value(&Value::Int(0)));
        // Date and Int are distinct types (not sql_eq) and hash apart.
        assert_ne!(hash_value(&Value::Date(5)), hash_value(&Value::Int(5)));
    }

    #[test]
    fn composite_hash_orders_matter() {
        let a = [Value::Int(1), Value::Int(2)];
        let b = [Value::Int(2), Value::Int(1)];
        assert_ne!(hash_values(&a), hash_values(&b));
    }
}
