//! Query planning — the *plan* phase of the plan → build → probe pipeline.
//!
//! Before any partition is touched, [`plan_query`] analyses every call of a
//! `WindowQuery` and derives, per call, (a) the *canonical ordering
//! criterion* its preprocessing sorts by and (b) the *kept-row mask*
//! (FILTER ∧ family-specific NULL screen) its trees are built over. Two
//! calls whose criteria and masks are structurally equal share every
//! preprocessing product — the inner sort, the dense codes, the merge sort
//! trees — through the per-partition [`crate::artifacts::ArtifactCache`].
//!
//! Keys are *self-describing recipes*: a [`CanonicalExpr`] is a lossless,
//! hashable mirror of [`Expr`], so the build phase reconstructs the exact
//! expression to evaluate from the key alone (`to_expr`). Floats are keyed
//! by bit pattern, which makes `Eq`/`Hash` total without changing equality
//! for any literal the engine can hold.
//!
//! Tree index width (u32 vs u64) is deliberately absent from the keys: the
//! width is chosen per partition from the partition size alone, so within
//! one cache every build of a given key picks the same width.

use crate::expr::{BinOp, Expr};
use crate::order::SortKey;
use crate::spec::{FuncKind, FunctionCall, WindowSpec};
use crate::strategy::CallClass;
use crate::value::Value;
use rustc_hash::FxHashSet;
use std::sync::Arc;

/// A hashable literal: floats keyed by bit pattern, everything else as-is.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum CanonicalValue {
    /// SQL NULL.
    Null,
    /// Integer literal.
    Int(i64),
    /// Float literal, by IEEE-754 bit pattern (lossless round-trip).
    FloatBits(u64),
    /// String literal.
    Str(Arc<str>),
    /// Date literal.
    Date(i32),
    /// Boolean literal.
    Bool(bool),
}

impl CanonicalValue {
    fn from_value(v: &Value) -> Self {
        match v {
            Value::Null => CanonicalValue::Null,
            Value::Int(x) => CanonicalValue::Int(*x),
            Value::Float(x) => CanonicalValue::FloatBits(x.to_bits()),
            Value::Str(s) => CanonicalValue::Str(s.clone()),
            Value::Date(d) => CanonicalValue::Date(*d),
            Value::Bool(b) => CanonicalValue::Bool(*b),
        }
    }

    fn to_value(&self) -> Value {
        match self {
            CanonicalValue::Null => Value::Null,
            CanonicalValue::Int(x) => Value::Int(*x),
            CanonicalValue::FloatBits(b) => Value::Float(f64::from_bits(*b)),
            CanonicalValue::Str(s) => Value::Str(s.clone()),
            CanonicalValue::Date(d) => Value::Date(*d),
            CanonicalValue::Bool(b) => Value::Bool(*b),
        }
    }
}

/// A lossless, hashable mirror of [`Expr`] establishing *structural*
/// equality: two expressions are the same artifact ingredient iff their
/// canonical forms are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum CanonicalExpr {
    /// Column reference.
    Col(String),
    /// Literal.
    Lit(CanonicalValue),
    /// Binary operation.
    Bin(BinOp, Box<CanonicalExpr>, Box<CanonicalExpr>),
    /// Logical negation.
    Not(Box<CanonicalExpr>),
    /// Arithmetic negation.
    Neg(Box<CanonicalExpr>),
}

impl CanonicalExpr {
    pub(crate) fn from_expr(e: &Expr) -> Self {
        match e {
            Expr::Col(name) => CanonicalExpr::Col(name.clone()),
            Expr::Lit(v) => CanonicalExpr::Lit(CanonicalValue::from_value(v)),
            Expr::Bin(op, a, b) => {
                CanonicalExpr::Bin(*op, Box::new(Self::from_expr(a)), Box::new(Self::from_expr(b)))
            }
            Expr::Not(a) => CanonicalExpr::Not(Box::new(Self::from_expr(a))),
            Expr::Neg(a) => CanonicalExpr::Neg(Box::new(Self::from_expr(a))),
        }
    }

    /// Reconstructs the expression the key describes (build-phase recipe).
    pub(crate) fn to_expr(&self) -> Expr {
        match self {
            CanonicalExpr::Col(name) => Expr::Col(name.clone()),
            CanonicalExpr::Lit(v) => Expr::Lit(v.to_value()),
            CanonicalExpr::Bin(op, a, b) => {
                Expr::Bin(*op, Box::new(a.to_expr()), Box::new(b.to_expr()))
            }
            CanonicalExpr::Not(a) => Expr::Not(Box::new(a.to_expr())),
            CanonicalExpr::Neg(a) => Expr::Neg(Box::new(a.to_expr())),
        }
    }
}

/// One canonical ORDER BY criterion.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CanonicalSortKey {
    pub expr: CanonicalExpr,
    pub desc: bool,
    pub nulls_first: bool,
}

impl CanonicalSortKey {
    fn from_sort_key(sk: &SortKey) -> Self {
        CanonicalSortKey {
            expr: CanonicalExpr::from_expr(&sk.expr),
            desc: sk.desc,
            nulls_first: sk.nulls_first,
        }
    }

    fn to_sort_key(&self) -> SortKey {
        SortKey { expr: self.expr.to_expr(), desc: self.desc, nulls_first: self.nulls_first }
    }
}

/// Canonicalizes an ORDER BY criteria list.
pub(crate) fn canonical_order(keys: &[SortKey]) -> Vec<CanonicalSortKey> {
    keys.iter().map(CanonicalSortKey::from_sort_key).collect()
}

/// Reconstructs the criteria list a canonical order describes.
pub(crate) fn sort_keys_of(keys: &[CanonicalSortKey]) -> Vec<SortKey> {
    keys.iter().map(CanonicalSortKey::to_sort_key).collect()
}

/// The ordering criterion a call's selection/ranking structures sort by.
///
/// `Identity` is frame-position order (value functions without an inner
/// ORDER BY); `Keys` is an explicit criteria list. Rank-family calls with an
/// empty inner ORDER BY canonicalize to the *window* ORDER BY here, so they
/// share artifacts with calls that spell the same criterion out explicitly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum OrderKey {
    Identity,
    Keys(Vec<CanonicalSortKey>),
}

/// The kept-row mask: which partition rows enter the preprocessing at all.
///
/// `filter` is the call's FILTER predicate; `screen` is the expression whose
/// NULL rows the family drops (aggregate argument, percentile key, IGNORE
/// NULLS argument — see [`FunctionCall::null_screen`]). Two calls share
/// sorted structures only when *both* components match: a percentile and a
/// rank call over the same criterion still differ (the percentile screens
/// NULL keys, the rank call keeps them), so their kept-row sets diverge.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct MaskKey {
    pub filter: Option<CanonicalExpr>,
    pub screen: Option<CanonicalExpr>,
}

/// Which annotated-tree aggregate a distinct SUM/AVG needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum AggFlavor {
    SumI64,
    SumF64,
    Avg,
}

/// Which segment-tree monoid a distributive aggregate needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum SegFlavor {
    Count,
    SumI64,
    SumF64,
    Min,
    Max,
}

/// Canonical identity of one preprocessing product within a partition.
///
/// Every artifact the evaluators consume is addressed by one of these keys;
/// the per-partition cache builds each distinct key exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum ArtifactKey {
    /// Expression values per partition position (window order).
    Values(CanonicalExpr),
    /// Kept-row mask, remap and kept→table row map.
    Mask(MaskKey),
    /// Expression values per *kept* position.
    KeptValues(CanonicalExpr, MaskKey),
    /// Materialized inner ORDER BY key columns (full table).
    InnerKeys(Vec<CanonicalSortKey>),
    /// The inner sort: dense codes + permutation over kept rows (Figure 8).
    DenseCodes(OrderKey, MaskKey),
    /// Merge sort tree over the unique codes (rank family, §4.4).
    CodeMst(OrderKey, MaskKey),
    /// Merge sort tree over the permutation array (selection, §4.5).
    PermMst(OrderKey, MaskKey),
    /// Distinct preprocessing: hashes + previous-occurrence indices (Alg. 1).
    DistinctPrep(CanonicalExpr, MaskKey),
    /// Merge sort tree over the previous-occurrence indices (§4.2).
    DistinctCountMst(CanonicalExpr, MaskKey),
    /// Annotated merge sort tree for SUM/AVG DISTINCT (§4.3).
    DistinctAggMst(CanonicalExpr, MaskKey, AggFlavor),
    /// MIN/MAX ordinal encoding of the values (all positions).
    OrdinalEnc(CanonicalExpr),
    /// Segment tree (distributive aggregates). The expression is `None` for
    /// the kept-row count tree shared by the whole mask.
    SegTree(Option<CanonicalExpr>, MaskKey, SegFlavor),
    /// 3-d range tree over tie-group ids (DENSE_RANK, §4.4).
    RangeTree(OrderKey, MaskKey),
    /// √-decomposition range mode index.
    ModeIndex(CanonicalExpr, MaskKey),
}

impl ArtifactKey {
    /// Short stable label for profiling output (`ExecProfile::artifacts`).
    /// Distinct keys of one shape share a label; footprints aggregate per
    /// label across partitions.
    pub(crate) fn label(&self) -> &'static str {
        use ArtifactKey as K;
        match self {
            K::Values(_) => "values",
            K::Mask(_) => "mask",
            K::KeptValues(..) => "kept-values",
            K::InnerKeys(_) => "inner-keys",
            K::DenseCodes(..) => "dense-codes",
            K::CodeMst(..) => "code-mst",
            K::PermMst(..) => "perm-mst",
            K::DistinctPrep(..) => "distinct-prep",
            K::DistinctCountMst(..) => "distinct-count-mst",
            K::DistinctAggMst(..) => "distinct-agg-mst",
            K::OrdinalEnc(_) => "ordinal-enc",
            K::SegTree(_, _, SegFlavor::Count) => "segtree-count",
            K::SegTree(_, _, SegFlavor::SumI64) => "segtree-sum-i64",
            K::SegTree(_, _, SegFlavor::SumF64) => "segtree-sum-f64",
            K::SegTree(_, _, SegFlavor::Min) => "segtree-min",
            K::SegTree(_, _, SegFlavor::Max) => "segtree-max",
            K::RangeTree(..) => "range-tree",
            K::ModeIndex(..) => "mode-index",
        }
    }
}

/// Every artifact key one call's evaluator may request — eager and lazy
/// (data-dependent) alike — derived **once** at plan time. The probe phase
/// only borrows these; [`crate::artifacts::ArtifactCache::get_or_build`]
/// clones a key exactly once, when its slot is first created. Before this
/// hoist, every lazy probe-phase build re-derived its key (deep-cloning the
/// canonical expression, mask and ordering criterion) per partition and per
/// call — pure waste, since the plan already knows every key.
#[derive(Debug, Clone, Default)]
pub(crate) struct CallKeys {
    /// Kept-row mask (absent only for classic positional LEAD/LAG, which
    /// never masks).
    pub mask: Option<ArtifactKey>,
    /// Argument (or percentile key) values per partition position.
    pub values: Option<ArtifactKey>,
    /// Output values per kept position.
    pub kept_values: Option<ArtifactKey>,
    /// Materialized inner ORDER BY key columns.
    pub inner_keys: Option<ArtifactKey>,
    /// The inner sort (dense codes + permutation).
    pub dense_codes: Option<ArtifactKey>,
    /// Merge sort tree over unique codes.
    pub code_mst: Option<ArtifactKey>,
    /// Merge sort tree over the permutation array.
    pub perm_mst: Option<ArtifactKey>,
    /// Distinct preprocessing (hashes + previous occurrences).
    pub distinct_prep: Option<ArtifactKey>,
    /// COUNT DISTINCT tree.
    pub distinct_count_mst: Option<ArtifactKey>,
    /// Kept-row count segment tree.
    pub count_segtree: Option<ArtifactKey>,
    /// DENSE_RANK 3-d range tree.
    pub range_tree: Option<ArtifactKey>,
    /// MODE √-decomposition index.
    pub mode_index: Option<ArtifactKey>,
    /// Lazy SUM/AVG DISTINCT annotated trees, one per possible flavor.
    pub distinct_agg_sum_i64: Option<ArtifactKey>,
    /// See [`CallKeys::distinct_agg_sum_i64`].
    pub distinct_agg_sum_f64: Option<ArtifactKey>,
    /// See [`CallKeys::distinct_agg_sum_i64`].
    pub distinct_agg_avg: Option<ArtifactKey>,
    /// Lazy SUM segment tree (integer flavor; chosen by the observed data).
    pub seg_sum_i64: Option<ArtifactKey>,
    /// Lazy SUM/AVG segment tree (float flavor).
    pub seg_sum_f64: Option<ArtifactKey>,
    /// Lazy MIN segment tree over ordinals.
    pub seg_min: Option<ArtifactKey>,
    /// Lazy MAX segment tree over ordinals.
    pub seg_max: Option<ArtifactKey>,
    /// Lazy MIN/MAX ordinal encoding.
    pub ordinal_enc: Option<ArtifactKey>,
}

/// Panicking accessors: an evaluator reaching for a key its own plan did not
/// derive is a planner/evaluator mismatch, not a runtime condition.
impl CallKeys {
    pub fn mask(&self) -> &ArtifactKey {
        self.mask.as_ref().expect("plan derives a mask key for masked calls")
    }
    pub fn values(&self) -> &ArtifactKey {
        self.values.as_ref().expect("plan derives a values key")
    }
    pub fn kept_values(&self) -> &ArtifactKey {
        self.kept_values.as_ref().expect("plan derives a kept-values key")
    }
    pub fn inner_keys(&self) -> &ArtifactKey {
        self.inner_keys.as_ref().expect("plan derives an inner-keys key")
    }
    pub fn dense_codes(&self) -> &ArtifactKey {
        self.dense_codes.as_ref().expect("plan derives a dense-codes key")
    }
    pub fn code_mst(&self) -> &ArtifactKey {
        self.code_mst.as_ref().expect("plan derives a code-MST key")
    }
    pub fn perm_mst(&self) -> &ArtifactKey {
        self.perm_mst.as_ref().expect("plan derives a permutation-MST key")
    }
    pub fn distinct_prep(&self) -> &ArtifactKey {
        self.distinct_prep.as_ref().expect("plan derives a distinct-prep key")
    }
    pub fn distinct_count_mst(&self) -> &ArtifactKey {
        self.distinct_count_mst.as_ref().expect("plan derives a COUNT DISTINCT tree key")
    }
    pub fn count_segtree(&self) -> &ArtifactKey {
        self.count_segtree.as_ref().expect("plan derives a count segment tree key")
    }
    pub fn range_tree(&self) -> &ArtifactKey {
        self.range_tree.as_ref().expect("plan derives a range-tree key")
    }
    pub fn mode_index(&self) -> &ArtifactKey {
        self.mode_index.as_ref().expect("plan derives a mode-index key")
    }
    pub fn distinct_agg(&self, flavor: AggFlavor) -> &ArtifactKey {
        let k = match flavor {
            AggFlavor::SumI64 => &self.distinct_agg_sum_i64,
            AggFlavor::SumF64 => &self.distinct_agg_sum_f64,
            AggFlavor::Avg => &self.distinct_agg_avg,
        };
        k.as_ref().expect("plan derives every reachable distinct-agg flavor")
    }
    pub fn seg(&self, flavor: SegFlavor) -> &ArtifactKey {
        let k = match flavor {
            SegFlavor::SumI64 => &self.seg_sum_i64,
            SegFlavor::SumF64 => &self.seg_sum_f64,
            SegFlavor::Min => &self.seg_min,
            SegFlavor::Max => &self.seg_max,
            SegFlavor::Count => &self.count_segtree,
        };
        k.as_ref().expect("plan derives every reachable segment-tree flavor")
    }
    pub fn ordinal_enc(&self) -> &ArtifactKey {
        self.ordinal_enc.as_ref().expect("plan derives an ordinal-encoding key")
    }

    /// The statically-known keys to prebuild eagerly, in dependency-
    /// compatible order (the getters recurse through missing ingredients, so
    /// the order is cosmetic, not load-bearing). Lazy data-dependent keys
    /// (SUM flavors, ordinal trees, annotated distinct trees) are excluded.
    pub(crate) fn eager(&self) -> impl Iterator<Item = &ArtifactKey> {
        [
            self.values.as_ref(),
            self.mask.as_ref(),
            self.kept_values.as_ref(),
            self.inner_keys.as_ref(),
            self.dense_codes.as_ref(),
            self.code_mst.as_ref(),
            self.perm_mst.as_ref(),
            self.distinct_prep.as_ref(),
            self.distinct_count_mst.as_ref(),
            self.count_segtree.as_ref(),
            self.range_tree.as_ref(),
            self.mode_index.as_ref(),
        ]
        .into_iter()
        .flatten()
    }
}

/// The per-call slice of a [`QueryPlan`].
#[derive(Debug, Clone)]
pub(crate) struct CallPlan {
    /// Canonical ordering criterion (None: the call never sorts).
    pub order: Option<OrderKey>,
    /// Pre-derived artifact keys (see [`CallKeys`]).
    pub keys: CallKeys,
    /// Call classification for the strategy layer (cost model input).
    pub class: CallClass,
}

/// The whole-query plan: per-call keys plus the deduplicated, statically
/// known artifact worklist the build phase forces up front.
#[derive(Debug, Clone)]
pub(crate) struct QueryPlan {
    pub calls: Vec<CallPlan>,
    /// Distinct artifacts to build eagerly, in dependency-compatible order.
    /// Data-dependent artifacts (SUM's integer-vs-float segment tree, MIN/MAX
    /// ordinal trees) are resolved lazily through the same cache instead.
    pub prebuild: Vec<ArtifactKey>,
}

/// Plans all calls of one query against a shared OVER clause.
pub(crate) fn plan_query(spec: &WindowSpec, calls: &[FunctionCall]) -> QueryPlan {
    let mut call_plans = Vec::with_capacity(calls.len());
    let mut prebuild = Vec::new();
    let mut seen: FxHashSet<ArtifactKey> = FxHashSet::default();
    for call in calls {
        let cp = plan_call(spec, call);
        for key in cp.keys.eager() {
            if seen.insert(key.clone()) {
                prebuild.push(key.clone());
            }
        }
        call_plans.push(cp);
    }
    QueryPlan { calls: call_plans, prebuild }
}

fn plan_call(spec: &WindowSpec, call: &FunctionCall) -> CallPlan {
    use FuncKind::*;
    let order = match call.kind {
        RowNumber | Rank | DenseRank | PercentRank | CumeDist | Ntile => {
            Some(OrderKey::Keys(canonical_order(call.rank_order(spec))))
        }
        PercentileDisc | PercentileCont | Median => {
            Some(OrderKey::Keys(canonical_order(&call.inner_order)))
        }
        FirstValue | LastValue | NthValue => Some(if call.inner_order.is_empty() {
            OrderKey::Identity
        } else {
            OrderKey::Keys(canonical_order(&call.inner_order))
        }),
        Lead | Lag => {
            // Empty inner order = classic positional semantics; no sort.
            if call.inner_order.is_empty() {
                None
            } else {
                Some(OrderKey::Keys(canonical_order(&call.inner_order)))
            }
        }
        CountStar | Count | Sum | Avg | Min | Max | Mode => None,
    };
    let mask = MaskKey {
        filter: call.filter.as_ref().map(CanonicalExpr::from_expr),
        screen: call.null_screen().map(CanonicalExpr::from_expr),
    };
    let args: Vec<CanonicalExpr> = call.args.iter().map(CanonicalExpr::from_expr).collect();
    let keys = derive_keys(call, &order, &mask, &args);
    CallPlan { order, keys, class: CallClass::of(call) }
}

/// Derives every artifact key the call's evaluator may request — the one
/// place canonical forms are cloned into keys. Mirrors the evaluator
/// dispatch in `crate::eval` exactly; a key the evaluator asks for but this
/// function does not derive panics loudly in the [`CallKeys`] accessors.
fn derive_keys(
    call: &FunctionCall,
    order: &Option<OrderKey>,
    mask: &MaskKey,
    args: &[CanonicalExpr],
) -> CallKeys {
    use ArtifactKey as K;
    use FuncKind::*;
    let mut keys = CallKeys { mask: Some(K::Mask(mask.clone())), ..CallKeys::default() };
    match call.kind {
        CountStar => {
            keys.count_segtree = Some(K::SegTree(None, mask.clone(), SegFlavor::Count));
        }
        Count | Sum | Avg | Min | Max => {
            let arg = args[0].clone();
            keys.values = Some(K::Values(arg.clone()));
            if call.distinct && !matches!(call.kind, Min | Max) {
                // MIN/MAX DISTINCT ≡ plain MIN/MAX → segment tree path below.
                keys.kept_values = Some(K::KeptValues(arg.clone(), mask.clone()));
                keys.distinct_prep = Some(K::DistinctPrep(arg.clone(), mask.clone()));
                match call.kind {
                    Count => {
                        keys.distinct_count_mst = Some(K::DistinctCountMst(arg, mask.clone()));
                    }
                    Sum => {
                        keys.distinct_agg_sum_i64 =
                            Some(K::DistinctAggMst(arg.clone(), mask.clone(), AggFlavor::SumI64));
                        keys.distinct_agg_sum_f64 =
                            Some(K::DistinctAggMst(arg, mask.clone(), AggFlavor::SumF64));
                    }
                    Avg => {
                        keys.distinct_agg_avg =
                            Some(K::DistinctAggMst(arg, mask.clone(), AggFlavor::Avg));
                    }
                    _ => unreachable!("distinct aggregate kinds"),
                }
            } else {
                keys.count_segtree = Some(K::SegTree(None, mask.clone(), SegFlavor::Count));
                match call.kind {
                    Sum => {
                        keys.seg_sum_i64 =
                            Some(K::SegTree(Some(arg.clone()), mask.clone(), SegFlavor::SumI64));
                        keys.seg_sum_f64 =
                            Some(K::SegTree(Some(arg), mask.clone(), SegFlavor::SumF64));
                    }
                    Avg => {
                        keys.seg_sum_f64 =
                            Some(K::SegTree(Some(arg), mask.clone(), SegFlavor::SumF64));
                    }
                    Min => {
                        keys.ordinal_enc = Some(K::OrdinalEnc(arg.clone()));
                        keys.seg_min = Some(K::SegTree(Some(arg), mask.clone(), SegFlavor::Min));
                    }
                    Max => {
                        keys.ordinal_enc = Some(K::OrdinalEnc(arg.clone()));
                        keys.seg_max = Some(K::SegTree(Some(arg), mask.clone(), SegFlavor::Max));
                    }
                    _ => {}
                }
            }
        }
        RowNumber | Rank | DenseRank | PercentRank | CumeDist | Ntile => {
            let order = order.clone().expect("rank family always orders");
            let OrderKey::Keys(ks) = &order else { unreachable!("rank order is explicit") };
            keys.inner_keys = Some(K::InnerKeys(ks.clone()));
            keys.dense_codes = Some(K::DenseCodes(order.clone(), mask.clone()));
            if call.kind == DenseRank {
                keys.range_tree = Some(K::RangeTree(order, mask.clone()));
            } else {
                keys.code_mst = Some(K::CodeMst(order, mask.clone()));
            }
        }
        PercentileDisc | PercentileCont | Median => {
            let order = order.clone().expect("percentiles always order");
            let OrderKey::Keys(ks) = &order else { unreachable!("percentile order is explicit") };
            let key_expr = ks[0].expr.clone();
            keys.values = Some(K::Values(key_expr.clone()));
            keys.kept_values = Some(K::KeptValues(key_expr, mask.clone()));
            keys.inner_keys = Some(K::InnerKeys(ks.clone()));
            keys.dense_codes = Some(K::DenseCodes(order.clone(), mask.clone()));
            keys.perm_mst = Some(K::PermMst(order, mask.clone()));
        }
        FirstValue | LastValue | NthValue => {
            let arg = args[0].clone();
            let order = order.clone().expect("value functions always have an order key");
            keys.values = Some(K::Values(arg.clone()));
            keys.kept_values = Some(K::KeptValues(arg, mask.clone()));
            if let OrderKey::Keys(ks) = &order {
                keys.inner_keys = Some(K::InnerKeys(ks.clone()));
                keys.dense_codes = Some(K::DenseCodes(order.clone(), mask.clone()));
            }
            keys.perm_mst = Some(K::PermMst(order, mask.clone()));
        }
        Lead | Lag => {
            let arg = args[0].clone();
            keys.values = Some(K::Values(arg.clone()));
            match order {
                Some(order @ OrderKey::Keys(ks)) => {
                    keys.kept_values = Some(K::KeptValues(arg, mask.clone()));
                    keys.inner_keys = Some(K::InnerKeys(ks.clone()));
                    keys.dense_codes = Some(K::DenseCodes(order.clone(), mask.clone()));
                    keys.code_mst = Some(K::CodeMst(order.clone(), mask.clone()));
                    keys.perm_mst = Some(K::PermMst(order.clone(), mask.clone()));
                }
                // Classic positional LEAD/LAG: frame and mask are ignored.
                _ => keys.mask = None,
            }
        }
        Mode => {
            let arg = args[0].clone();
            keys.values = Some(K::Values(arg.clone()));
            keys.mode_index = Some(K::ModeIndex(arg, mask.clone()));
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn canonical_expr_roundtrip_is_lossless() {
        let e = col("a").add(lit(1i64)).mul(col("b").sub(lit(2.5))).lt(lit(10i64)).not();
        let c = CanonicalExpr::from_expr(&e);
        let back = CanonicalExpr::from_expr(&c.to_expr());
        assert_eq!(c, back);
    }

    #[test]
    fn structurally_equal_exprs_share_keys() {
        let a = CanonicalExpr::from_expr(&col("x").add(lit(1i64)));
        let b = CanonicalExpr::from_expr(&col("x").add(lit(1i64)));
        assert_eq!(a, b);
        let c = CanonicalExpr::from_expr(&col("x").add(lit(2i64)));
        assert_ne!(a, c);
        // Floats key by bits: 0.0 and -0.0 are distinct recipes.
        let z = CanonicalExpr::from_expr(&lit(0.0));
        let nz = CanonicalExpr::from_expr(&lit(-0.0));
        assert_ne!(z, nz);
    }

    #[test]
    fn rank_family_falls_back_to_window_order() {
        let spec = WindowSpec::new().order_by(vec![SortKey::asc(col("v"))]);
        let implicit = FunctionCall::rank(vec![]);
        let explicit = FunctionCall::row_number(vec![SortKey::asc(col("v"))]);
        let plan = plan_query(&spec, &[implicit, explicit]);
        assert_eq!(plan.calls[0].order, plan.calls[1].order);
        // One shared dense-code sort, one shared code tree.
        let sorts =
            plan.prebuild.iter().filter(|k| matches!(k, ArtifactKey::DenseCodes(..))).count();
        let msts = plan.prebuild.iter().filter(|k| matches!(k, ArtifactKey::CodeMst(..))).count();
        assert_eq!((sorts, msts), (1, 1));
    }

    #[test]
    fn percentile_mask_differs_from_rank_mask() {
        // Same criterion, but the percentile screens NULL keys — the kept-row
        // sets can diverge, so the sorted structures must not be shared.
        let spec = WindowSpec::new();
        let med = FunctionCall::median(col("v"));
        let rnk = FunctionCall::rank(vec![SortKey::asc(col("v"))]);
        let plan = plan_query(&spec, &[med, rnk]);
        assert_eq!(plan.calls[0].order, plan.calls[1].order);
        assert_ne!(plan.calls[0].keys.mask(), plan.calls[1].keys.mask());
        let sorts =
            plan.prebuild.iter().filter(|k| matches!(k, ArtifactKey::DenseCodes(..))).count();
        assert_eq!(sorts, 2);
    }

    #[test]
    fn lazy_flavors_are_planned_but_not_prebuilt() {
        // Data-dependent artifacts (SUM's integer-vs-float tree, MIN/MAX
        // ordinal trees, annotated distinct trees) must have plan-derived
        // keys — the probe path borrows them — yet stay off the eager
        // prebuild worklist, whose flavor choice needs the data.
        let spec = WindowSpec::new();
        let calls = vec![
            FunctionCall::sum(col("v")),
            FunctionCall::min(col("v")),
            FunctionCall::sum_distinct(col("v")),
        ];
        let plan = plan_query(&spec, &calls);
        let sum = &plan.calls[0].keys;
        assert!(matches!(sum.seg(SegFlavor::SumI64), ArtifactKey::SegTree(..)));
        assert!(matches!(sum.seg(SegFlavor::SumF64), ArtifactKey::SegTree(..)));
        let min = &plan.calls[1].keys;
        assert!(matches!(min.ordinal_enc(), ArtifactKey::OrdinalEnc(..)));
        assert!(matches!(min.seg(SegFlavor::Min), ArtifactKey::SegTree(..)));
        let sd = &plan.calls[2].keys;
        assert!(matches!(sd.distinct_agg(AggFlavor::SumI64), ArtifactKey::DistinctAggMst(..)));
        assert!(matches!(sd.distinct_agg(AggFlavor::SumF64), ArtifactKey::DistinctAggMst(..)));
        assert!(!plan.prebuild.iter().any(|k| matches!(
            k,
            ArtifactKey::OrdinalEnc(..)
                | ArtifactKey::DistinctAggMst(..)
                | ArtifactKey::SegTree(_, _, SegFlavor::SumI64)
                | ArtifactKey::SegTree(_, _, SegFlavor::SumF64)
                | ArtifactKey::SegTree(_, _, SegFlavor::Min)
                | ArtifactKey::SegTree(_, _, SegFlavor::Max)
        )));
        // The count tree, shared by all three masks' aggregates, is eager.
        assert!(plan
            .prebuild
            .iter()
            .any(|k| matches!(k, ArtifactKey::SegTree(None, _, SegFlavor::Count))));
    }

    #[test]
    fn prebuild_deduplicates_across_families() {
        let spec = WindowSpec::new().order_by(vec![SortKey::asc(col("pos"))]);
        let calls = vec![
            FunctionCall::rank(vec![SortKey::asc(col("v"))]),
            FunctionCall::row_number(vec![SortKey::asc(col("v"))]),
            FunctionCall::lead(col("x"), 1, lit(0i64)).order_by(vec![SortKey::asc(col("v"))]),
        ];
        let plan = plan_query(&spec, &calls);
        // rank + row_number + lead (no IGNORE NULLS) all share the filterless
        // mask and the same criterion: one sort, one code MST, one perm MST.
        let count =
            |f: &dyn Fn(&ArtifactKey) -> bool| plan.prebuild.iter().filter(|k| f(k)).count();
        assert_eq!(count(&|k| matches!(k, ArtifactKey::DenseCodes(..))), 1);
        assert_eq!(count(&|k| matches!(k, ArtifactKey::CodeMst(..))), 1);
        assert_eq!(count(&|k| matches!(k, ArtifactKey::PermMst(..))), 1);
        assert_eq!(count(&|k| matches!(k, ArtifactKey::Mask(..))), 1);
    }
}
