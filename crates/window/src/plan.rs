//! Query planning — the *plan* phase of the plan → build → probe pipeline.
//!
//! Before any partition is touched, [`plan_query`] analyses every call of a
//! `WindowQuery` and derives, per call, (a) the *canonical ordering
//! criterion* its preprocessing sorts by and (b) the *kept-row mask*
//! (FILTER ∧ family-specific NULL screen) its trees are built over. Two
//! calls whose criteria and masks are structurally equal share every
//! preprocessing product — the inner sort, the dense codes, the merge sort
//! trees — through the per-partition [`crate::artifacts::ArtifactCache`].
//!
//! Keys are *self-describing recipes*: a [`CanonicalExpr`] is a lossless,
//! hashable mirror of [`Expr`], so the build phase reconstructs the exact
//! expression to evaluate from the key alone (`to_expr`). Floats are keyed
//! by bit pattern, which makes `Eq`/`Hash` total without changing equality
//! for any literal the engine can hold.
//!
//! Tree index width (u32 vs u64) is deliberately absent from the keys: the
//! width is chosen per partition from the partition size alone, so within
//! one cache every build of a given key picks the same width.

use crate::expr::{BinOp, Expr};
use crate::order::SortKey;
use crate::spec::{FuncKind, FunctionCall, WindowSpec};
use crate::value::Value;
use rustc_hash::FxHashSet;
use std::sync::Arc;

/// A hashable literal: floats keyed by bit pattern, everything else as-is.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum CanonicalValue {
    /// SQL NULL.
    Null,
    /// Integer literal.
    Int(i64),
    /// Float literal, by IEEE-754 bit pattern (lossless round-trip).
    FloatBits(u64),
    /// String literal.
    Str(Arc<str>),
    /// Date literal.
    Date(i32),
    /// Boolean literal.
    Bool(bool),
}

impl CanonicalValue {
    fn from_value(v: &Value) -> Self {
        match v {
            Value::Null => CanonicalValue::Null,
            Value::Int(x) => CanonicalValue::Int(*x),
            Value::Float(x) => CanonicalValue::FloatBits(x.to_bits()),
            Value::Str(s) => CanonicalValue::Str(s.clone()),
            Value::Date(d) => CanonicalValue::Date(*d),
            Value::Bool(b) => CanonicalValue::Bool(*b),
        }
    }

    fn to_value(&self) -> Value {
        match self {
            CanonicalValue::Null => Value::Null,
            CanonicalValue::Int(x) => Value::Int(*x),
            CanonicalValue::FloatBits(b) => Value::Float(f64::from_bits(*b)),
            CanonicalValue::Str(s) => Value::Str(s.clone()),
            CanonicalValue::Date(d) => Value::Date(*d),
            CanonicalValue::Bool(b) => Value::Bool(*b),
        }
    }
}

/// A lossless, hashable mirror of [`Expr`] establishing *structural*
/// equality: two expressions are the same artifact ingredient iff their
/// canonical forms are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum CanonicalExpr {
    /// Column reference.
    Col(String),
    /// Literal.
    Lit(CanonicalValue),
    /// Binary operation.
    Bin(BinOp, Box<CanonicalExpr>, Box<CanonicalExpr>),
    /// Logical negation.
    Not(Box<CanonicalExpr>),
    /// Arithmetic negation.
    Neg(Box<CanonicalExpr>),
}

impl CanonicalExpr {
    pub(crate) fn from_expr(e: &Expr) -> Self {
        match e {
            Expr::Col(name) => CanonicalExpr::Col(name.clone()),
            Expr::Lit(v) => CanonicalExpr::Lit(CanonicalValue::from_value(v)),
            Expr::Bin(op, a, b) => {
                CanonicalExpr::Bin(*op, Box::new(Self::from_expr(a)), Box::new(Self::from_expr(b)))
            }
            Expr::Not(a) => CanonicalExpr::Not(Box::new(Self::from_expr(a))),
            Expr::Neg(a) => CanonicalExpr::Neg(Box::new(Self::from_expr(a))),
        }
    }

    /// Reconstructs the expression the key describes (build-phase recipe).
    pub(crate) fn to_expr(&self) -> Expr {
        match self {
            CanonicalExpr::Col(name) => Expr::Col(name.clone()),
            CanonicalExpr::Lit(v) => Expr::Lit(v.to_value()),
            CanonicalExpr::Bin(op, a, b) => {
                Expr::Bin(*op, Box::new(a.to_expr()), Box::new(b.to_expr()))
            }
            CanonicalExpr::Not(a) => Expr::Not(Box::new(a.to_expr())),
            CanonicalExpr::Neg(a) => Expr::Neg(Box::new(a.to_expr())),
        }
    }
}

/// One canonical ORDER BY criterion.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CanonicalSortKey {
    pub expr: CanonicalExpr,
    pub desc: bool,
    pub nulls_first: bool,
}

impl CanonicalSortKey {
    fn from_sort_key(sk: &SortKey) -> Self {
        CanonicalSortKey {
            expr: CanonicalExpr::from_expr(&sk.expr),
            desc: sk.desc,
            nulls_first: sk.nulls_first,
        }
    }

    fn to_sort_key(&self) -> SortKey {
        SortKey { expr: self.expr.to_expr(), desc: self.desc, nulls_first: self.nulls_first }
    }
}

/// Canonicalizes an ORDER BY criteria list.
pub(crate) fn canonical_order(keys: &[SortKey]) -> Vec<CanonicalSortKey> {
    keys.iter().map(CanonicalSortKey::from_sort_key).collect()
}

/// Reconstructs the criteria list a canonical order describes.
pub(crate) fn sort_keys_of(keys: &[CanonicalSortKey]) -> Vec<SortKey> {
    keys.iter().map(CanonicalSortKey::to_sort_key).collect()
}

/// The ordering criterion a call's selection/ranking structures sort by.
///
/// `Identity` is frame-position order (value functions without an inner
/// ORDER BY); `Keys` is an explicit criteria list. Rank-family calls with an
/// empty inner ORDER BY canonicalize to the *window* ORDER BY here, so they
/// share artifacts with calls that spell the same criterion out explicitly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum OrderKey {
    Identity,
    Keys(Vec<CanonicalSortKey>),
}

/// The kept-row mask: which partition rows enter the preprocessing at all.
///
/// `filter` is the call's FILTER predicate; `screen` is the expression whose
/// NULL rows the family drops (aggregate argument, percentile key, IGNORE
/// NULLS argument — see [`FunctionCall::null_screen`]). Two calls share
/// sorted structures only when *both* components match: a percentile and a
/// rank call over the same criterion still differ (the percentile screens
/// NULL keys, the rank call keeps them), so their kept-row sets diverge.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct MaskKey {
    pub filter: Option<CanonicalExpr>,
    pub screen: Option<CanonicalExpr>,
}

/// Which annotated-tree aggregate a distinct SUM/AVG needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum AggFlavor {
    SumI64,
    SumF64,
    Avg,
}

/// Which segment-tree monoid a distributive aggregate needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum SegFlavor {
    Count,
    SumI64,
    SumF64,
    Min,
    Max,
}

/// Canonical identity of one preprocessing product within a partition.
///
/// Every artifact the evaluators consume is addressed by one of these keys;
/// the per-partition cache builds each distinct key exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum ArtifactKey {
    /// Expression values per partition position (window order).
    Values(CanonicalExpr),
    /// Kept-row mask, remap and kept→table row map.
    Mask(MaskKey),
    /// Expression values per *kept* position.
    KeptValues(CanonicalExpr, MaskKey),
    /// Materialized inner ORDER BY key columns (full table).
    InnerKeys(Vec<CanonicalSortKey>),
    /// The inner sort: dense codes + permutation over kept rows (Figure 8).
    DenseCodes(OrderKey, MaskKey),
    /// Merge sort tree over the unique codes (rank family, §4.4).
    CodeMst(OrderKey, MaskKey),
    /// Merge sort tree over the permutation array (selection, §4.5).
    PermMst(OrderKey, MaskKey),
    /// Distinct preprocessing: hashes + previous-occurrence indices (Alg. 1).
    DistinctPrep(CanonicalExpr, MaskKey),
    /// Merge sort tree over the previous-occurrence indices (§4.2).
    DistinctCountMst(CanonicalExpr, MaskKey),
    /// Annotated merge sort tree for SUM/AVG DISTINCT (§4.3).
    DistinctAggMst(CanonicalExpr, MaskKey, AggFlavor),
    /// MIN/MAX ordinal encoding of the values (all positions).
    OrdinalEnc(CanonicalExpr),
    /// Segment tree (distributive aggregates). The expression is `None` for
    /// the kept-row count tree shared by the whole mask.
    SegTree(Option<CanonicalExpr>, MaskKey, SegFlavor),
    /// 3-d range tree over tie-group ids (DENSE_RANK, §4.4).
    RangeTree(OrderKey, MaskKey),
    /// √-decomposition range mode index.
    ModeIndex(CanonicalExpr, MaskKey),
}

/// The per-call slice of a [`QueryPlan`].
#[derive(Debug, Clone)]
pub(crate) struct CallPlan {
    /// Canonical ordering criterion (None: the call never sorts).
    pub order: Option<OrderKey>,
    /// Canonical kept-row mask.
    pub mask: MaskKey,
    /// Canonical forms of the call's positional arguments.
    pub args: Vec<CanonicalExpr>,
}

/// The whole-query plan: per-call keys plus the deduplicated, statically
/// known artifact worklist the build phase forces up front.
#[derive(Debug, Clone)]
pub(crate) struct QueryPlan {
    pub calls: Vec<CallPlan>,
    /// Distinct artifacts to build eagerly, in dependency-compatible order.
    /// Data-dependent artifacts (SUM's integer-vs-float segment tree, MIN/MAX
    /// ordinal trees) are resolved lazily through the same cache instead.
    pub prebuild: Vec<ArtifactKey>,
}

/// Plans all calls of one query against a shared OVER clause.
pub(crate) fn plan_query(spec: &WindowSpec, calls: &[FunctionCall]) -> QueryPlan {
    let mut call_plans = Vec::with_capacity(calls.len());
    let mut prebuild = Vec::new();
    let mut seen: FxHashSet<ArtifactKey> = FxHashSet::default();
    for call in calls {
        let cp = plan_call(spec, call);
        collect_prebuild(call, &cp, &mut |key: ArtifactKey| {
            if seen.insert(key.clone()) {
                prebuild.push(key);
            }
        });
        call_plans.push(cp);
    }
    QueryPlan { calls: call_plans, prebuild }
}

fn plan_call(spec: &WindowSpec, call: &FunctionCall) -> CallPlan {
    use FuncKind::*;
    let order = match call.kind {
        RowNumber | Rank | DenseRank | PercentRank | CumeDist | Ntile => {
            Some(OrderKey::Keys(canonical_order(call.rank_order(spec))))
        }
        PercentileDisc | PercentileCont | Median => {
            Some(OrderKey::Keys(canonical_order(&call.inner_order)))
        }
        FirstValue | LastValue | NthValue => Some(if call.inner_order.is_empty() {
            OrderKey::Identity
        } else {
            OrderKey::Keys(canonical_order(&call.inner_order))
        }),
        Lead | Lag => {
            // Empty inner order = classic positional semantics; no sort.
            if call.inner_order.is_empty() {
                None
            } else {
                Some(OrderKey::Keys(canonical_order(&call.inner_order)))
            }
        }
        CountStar | Count | Sum | Avg | Min | Max | Mode => None,
    };
    let mask = MaskKey {
        filter: call.filter.as_ref().map(CanonicalExpr::from_expr),
        screen: call.null_screen().map(CanonicalExpr::from_expr),
    };
    CallPlan { order, mask, args: call.args.iter().map(CanonicalExpr::from_expr).collect() }
}

/// Emits the statically known artifact keys one call needs.
fn collect_prebuild(call: &FunctionCall, cp: &CallPlan, push: &mut dyn FnMut(ArtifactKey)) {
    use ArtifactKey as K;
    use FuncKind::*;
    let mask = cp.mask.clone();
    match call.kind {
        CountStar => {
            push(K::Mask(mask.clone()));
            push(K::SegTree(None, mask, SegFlavor::Count));
        }
        Count | Sum | Avg | Min | Max => {
            let arg = cp.args[0].clone();
            push(K::Values(arg.clone()));
            push(K::Mask(mask.clone()));
            if call.distinct && !matches!(call.kind, Min | Max) {
                // MIN/MAX DISTINCT ≡ plain MIN/MAX → segment tree path below.
                push(K::KeptValues(arg.clone(), mask.clone()));
                push(K::DistinctPrep(arg.clone(), mask.clone()));
                if call.kind == Count {
                    push(K::DistinctCountMst(arg, mask));
                }
            } else {
                push(K::SegTree(None, mask, SegFlavor::Count));
            }
        }
        RowNumber | Rank | DenseRank | PercentRank | CumeDist | Ntile => {
            let order = cp.order.clone().expect("rank family always orders");
            let OrderKey::Keys(ks) = &order else { unreachable!("rank order is explicit") };
            push(K::Mask(mask.clone()));
            push(K::InnerKeys(ks.clone()));
            push(K::DenseCodes(order.clone(), mask.clone()));
            if call.kind == DenseRank {
                push(K::RangeTree(order, mask));
            } else {
                push(K::CodeMst(order, mask));
            }
        }
        PercentileDisc | PercentileCont | Median => {
            let order = cp.order.clone().expect("percentiles always order");
            let OrderKey::Keys(ks) = &order else { unreachable!("percentile order is explicit") };
            let key_expr = ks[0].expr.clone();
            push(K::Values(key_expr.clone()));
            push(K::Mask(mask.clone()));
            push(K::KeptValues(key_expr, mask.clone()));
            push(K::InnerKeys(ks.clone()));
            push(K::DenseCodes(order.clone(), mask.clone()));
            push(K::PermMst(order, mask));
        }
        FirstValue | LastValue | NthValue => {
            let arg = cp.args[0].clone();
            let order = cp.order.clone().expect("value functions always have an order key");
            push(K::Values(arg.clone()));
            push(K::Mask(mask.clone()));
            push(K::KeptValues(arg, mask.clone()));
            if let OrderKey::Keys(ks) = &order {
                push(K::InnerKeys(ks.clone()));
                push(K::DenseCodes(order.clone(), mask.clone()));
            }
            push(K::PermMst(order, mask));
        }
        Lead | Lag => {
            let arg = cp.args[0].clone();
            push(K::Values(arg.clone()));
            if let Some(order @ OrderKey::Keys(ks)) = &cp.order {
                push(K::Mask(mask.clone()));
                push(K::KeptValues(arg, mask.clone()));
                push(K::InnerKeys(ks.clone()));
                push(K::DenseCodes(order.clone(), mask.clone()));
                push(K::CodeMst(order.clone(), mask.clone()));
                push(K::PermMst(order.clone(), mask));
            }
        }
        Mode => {
            let arg = cp.args[0].clone();
            push(K::Values(arg.clone()));
            push(K::Mask(mask.clone()));
            push(K::ModeIndex(arg, mask));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn canonical_expr_roundtrip_is_lossless() {
        let e = col("a").add(lit(1i64)).mul(col("b").sub(lit(2.5))).lt(lit(10i64)).not();
        let c = CanonicalExpr::from_expr(&e);
        let back = CanonicalExpr::from_expr(&c.to_expr());
        assert_eq!(c, back);
    }

    #[test]
    fn structurally_equal_exprs_share_keys() {
        let a = CanonicalExpr::from_expr(&col("x").add(lit(1i64)));
        let b = CanonicalExpr::from_expr(&col("x").add(lit(1i64)));
        assert_eq!(a, b);
        let c = CanonicalExpr::from_expr(&col("x").add(lit(2i64)));
        assert_ne!(a, c);
        // Floats key by bits: 0.0 and -0.0 are distinct recipes.
        let z = CanonicalExpr::from_expr(&lit(0.0));
        let nz = CanonicalExpr::from_expr(&lit(-0.0));
        assert_ne!(z, nz);
    }

    #[test]
    fn rank_family_falls_back_to_window_order() {
        let spec = WindowSpec::new().order_by(vec![SortKey::asc(col("v"))]);
        let implicit = FunctionCall::rank(vec![]);
        let explicit = FunctionCall::row_number(vec![SortKey::asc(col("v"))]);
        let plan = plan_query(&spec, &[implicit, explicit]);
        assert_eq!(plan.calls[0].order, plan.calls[1].order);
        // One shared dense-code sort, one shared code tree.
        let sorts =
            plan.prebuild.iter().filter(|k| matches!(k, ArtifactKey::DenseCodes(..))).count();
        let msts = plan.prebuild.iter().filter(|k| matches!(k, ArtifactKey::CodeMst(..))).count();
        assert_eq!((sorts, msts), (1, 1));
    }

    #[test]
    fn percentile_mask_differs_from_rank_mask() {
        // Same criterion, but the percentile screens NULL keys — the kept-row
        // sets can diverge, so the sorted structures must not be shared.
        let spec = WindowSpec::new();
        let med = FunctionCall::median(col("v"));
        let rnk = FunctionCall::rank(vec![SortKey::asc(col("v"))]);
        let plan = plan_query(&spec, &[med, rnk]);
        assert_eq!(plan.calls[0].order, plan.calls[1].order);
        assert_ne!(plan.calls[0].mask, plan.calls[1].mask);
        let sorts =
            plan.prebuild.iter().filter(|k| matches!(k, ArtifactKey::DenseCodes(..))).count();
        assert_eq!(sorts, 2);
    }

    #[test]
    fn prebuild_deduplicates_across_families() {
        let spec = WindowSpec::new().order_by(vec![SortKey::asc(col("pos"))]);
        let calls = vec![
            FunctionCall::rank(vec![SortKey::asc(col("v"))]),
            FunctionCall::row_number(vec![SortKey::asc(col("v"))]),
            FunctionCall::lead(col("x"), 1, lit(0i64)).order_by(vec![SortKey::asc(col("v"))]),
        ];
        let plan = plan_query(&spec, &calls);
        // rank + row_number + lead (no IGNORE NULLS) all share the filterless
        // mask and the same criterion: one sort, one code MST, one perm MST.
        let count =
            |f: &dyn Fn(&ArtifactKey) -> bool| plan.prebuild.iter().filter(|k| f(k)).count();
        assert_eq!(count(&|k| matches!(k, ArtifactKey::DenseCodes(..))), 1);
        assert_eq!(count(&|k| matches!(k, ArtifactKey::CodeMst(..))), 1);
        assert_eq!(count(&|k| matches!(k, ArtifactKey::PermMst(..))), 1);
        assert_eq!(count(&|k| matches!(k, ArtifactKey::Mask(..))), 1);
    }
}
