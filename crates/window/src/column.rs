//! Columnar storage.

use crate::error::{Error, Result};
use crate::value::{DataType, Value};
use std::sync::Arc;

/// A typed column with a validity mask.
///
/// Storage is dense (one slot per row); `valid[i] == false` marks NULL. The
/// validity vector is omitted (empty) when no NULLs exist.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<i64>, Validity),
    /// 64-bit floats.
    Float(Vec<f64>, Validity),
    /// Strings.
    Str(Vec<Arc<str>>, Validity),
    /// Days since epoch.
    Date(Vec<i32>, Validity),
    /// Booleans.
    Bool(Vec<bool>, Validity),
}

/// NULL mask: empty means "all valid".
pub type Validity = Vec<bool>;

impl Column {
    /// Builds an integer column without NULLs.
    pub fn ints(v: Vec<i64>) -> Self {
        Column::Int(v, Vec::new())
    }

    /// Builds a float column without NULLs.
    pub fn floats(v: Vec<f64>) -> Self {
        Column::Float(v, Vec::new())
    }

    /// Builds a date column without NULLs.
    pub fn dates(v: Vec<i32>) -> Self {
        Column::Date(v, Vec::new())
    }

    /// Builds a string column without NULLs.
    pub fn strs<S: Into<Arc<str>>>(v: Vec<S>) -> Self {
        Column::Str(v.into_iter().map(Into::into).collect(), Vec::new())
    }

    /// Builds a bool column without NULLs.
    pub fn bools(v: Vec<bool>) -> Self {
        Column::Bool(v, Vec::new())
    }

    /// Builds an integer column from options.
    pub fn ints_opt(v: Vec<Option<i64>>) -> Self {
        let valid: Vec<bool> = v.iter().map(|o| o.is_some()).collect();
        let data = v.into_iter().map(|o| o.unwrap_or(0)).collect();
        Column::Int(data, if valid.iter().all(|&b| b) { Vec::new() } else { valid })
    }

    /// Builds a float column from options.
    pub fn floats_opt(v: Vec<Option<f64>>) -> Self {
        let valid: Vec<bool> = v.iter().map(|o| o.is_some()).collect();
        let data = v.into_iter().map(|o| o.unwrap_or(0.0)).collect();
        Column::Float(data, if valid.iter().all(|&b| b) { Vec::new() } else { valid })
    }

    /// Builds a column from dynamically typed values (type inferred from the
    /// first non-null; all-null columns become Int).
    pub fn from_values(values: &[Value]) -> Result<Self> {
        let dt = values
            .iter()
            .find(|v| !v.is_null())
            .map(|v| match v {
                Value::Int(_) => DataType::Int,
                Value::Float(_) => DataType::Float,
                Value::Str(_) => DataType::Str,
                Value::Date(_) => DataType::Date,
                Value::Bool(_) => DataType::Bool,
                Value::Null => unreachable!(),
            })
            .unwrap_or(DataType::Int);
        let mut col = Column::new_empty(dt);
        for v in values {
            col.push(v.clone())?;
        }
        Ok(col)
    }

    /// An empty column of the given type.
    pub fn new_empty(dt: DataType) -> Self {
        match dt {
            DataType::Int => Column::Int(Vec::new(), Vec::new()),
            DataType::Float => Column::Float(Vec::new(), Vec::new()),
            DataType::Str => Column::Str(Vec::new(), Vec::new()),
            DataType::Date => Column::Date(Vec::new(), Vec::new()),
            DataType::Bool => Column::Bool(Vec::new(), Vec::new()),
        }
    }

    /// Appends a value (NULL or matching type).
    pub fn push(&mut self, v: Value) -> Result<()> {
        fn put<T>(data: &mut Vec<T>, valid: &mut Validity, item: Option<T>, default: T) {
            match item {
                Some(x) => {
                    if !valid.is_empty() {
                        valid.push(true);
                    }
                    data.push(x);
                }
                None => {
                    if valid.is_empty() {
                        valid.extend(std::iter::repeat_n(true, data.len()));
                    }
                    valid.push(false);
                    data.push(default);
                }
            }
        }
        let type_err = |got: &'static str| Error::TypeMismatch {
            expected: "column element",
            got,
            context: "Column::push",
        };
        match (self, v) {
            (Column::Int(d, va), Value::Int(x)) => put(d, va, Some(x), 0),
            (Column::Int(d, va), Value::Null) => put(d, va, None, 0),
            (Column::Float(d, va), Value::Float(x)) => put(d, va, Some(x), 0.0),
            (Column::Float(d, va), Value::Int(x)) => put(d, va, Some(x as f64), 0.0),
            (Column::Float(d, va), Value::Null) => put(d, va, None, 0.0),
            (Column::Str(d, va), Value::Str(x)) => put(d, va, Some(x), Arc::from("")),
            (Column::Str(d, va), Value::Null) => put(d, va, None, Arc::from("")),
            (Column::Date(d, va), Value::Date(x)) => put(d, va, Some(x), 0),
            (Column::Date(d, va), Value::Null) => put(d, va, None, 0),
            (Column::Bool(d, va), Value::Bool(x)) => put(d, va, Some(x), false),
            (Column::Bool(d, va), Value::Null) => put(d, va, None, false),
            (_, v) => return Err(type_err(v.type_name())),
        }
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(d, _) => d.len(),
            Column::Float(d, _) => d.len(),
            Column::Str(d, _) => d.len(),
            Column::Date(d, _) => d.len(),
            Column::Bool(d, _) => d.len(),
        }
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(..) => DataType::Int,
            Column::Float(..) => DataType::Float,
            Column::Str(..) => DataType::Str,
            Column::Date(..) => DataType::Date,
            Column::Bool(..) => DataType::Bool,
        }
    }

    /// True when row `i` is valid (non-NULL).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        let v = match self {
            Column::Int(_, v) | Column::Date(_, v) => v,
            Column::Float(_, v) => v,
            Column::Str(_, v) => v,
            Column::Bool(_, v) => v,
        };
        v.is_empty() || v[i]
    }

    /// Row `i` as a [`Value`].
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match self {
            Column::Int(d, _) => Value::Int(d[i]),
            Column::Float(d, _) => Value::Float(d[i]),
            Column::Str(d, _) => Value::Str(d[i].clone()),
            Column::Date(d, _) => Value::Date(d[i]),
            Column::Bool(d, _) => Value::Bool(d[i]),
        }
    }

    /// All rows as values (convenience for tests and small outputs).
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Rows `[a, b)` as a new column of the *same* type, validity preserved.
    /// Unlike a [`Column::from_values`] round-trip, slicing never re-infers
    /// the type, so an all-NULL or empty slice keeps the source type — which
    /// is what makes sliced batches push-compatible with their source (see
    /// [`crate::table::Table::slice_rows`]).
    pub fn slice(&self, a: usize, b: usize) -> Column {
        fn vslice(valid: &Validity, a: usize, b: usize) -> Validity {
            if valid.is_empty() {
                Vec::new()
            } else {
                let s = valid[a..b].to_vec();
                if s.iter().all(|&x| x) {
                    Vec::new()
                } else {
                    s
                }
            }
        }
        match self {
            Column::Int(d, v) => Column::Int(d[a..b].to_vec(), vslice(v, a, b)),
            Column::Float(d, v) => Column::Float(d[a..b].to_vec(), vslice(v, a, b)),
            Column::Str(d, v) => Column::Str(d[a..b].to_vec(), vslice(v, a, b)),
            Column::Date(d, v) => Column::Date(d[a..b].to_vec(), vslice(v, a, b)),
            Column::Bool(d, v) => Column::Bool(d[a..b].to_vec(), vslice(v, a, b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = Column::new_empty(DataType::Int);
        c.push(Value::Int(5)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(-3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(5));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(-3));
        assert!(!c.is_valid(1) && c.is_valid(2));
    }

    #[test]
    fn validity_stays_empty_without_nulls() {
        let mut c = Column::new_empty(DataType::Float);
        c.push(Value::Float(1.5)).unwrap();
        c.push(Value::Int(2)).unwrap(); // int→float widening
        match &c {
            Column::Float(d, v) => {
                assert_eq!(d, &vec![1.5, 2.0]);
                assert!(v.is_empty());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let mut c = Column::new_empty(DataType::Int);
        assert!(c.push(Value::str("nope")).is_err());
    }

    #[test]
    fn from_values_infers_type() {
        let vals = vec![Value::Null, Value::str("x"), Value::Null];
        let c = Column::from_values(&vals).unwrap();
        assert_eq!(c.data_type(), DataType::Str);
        assert_eq!(c.to_values(), vals);
    }

    #[test]
    fn opt_constructors() {
        let c = Column::ints_opt(vec![Some(1), None, Some(3)]);
        assert_eq!(c.get(1), Value::Null);
        let c = Column::floats_opt(vec![Some(1.0), Some(2.0)]);
        assert!(matches!(c, Column::Float(_, ref v) if v.is_empty()));
    }
}
