//! Error type of the window engine.

use std::fmt;

/// Errors raised while planning or evaluating a window query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// An expression evaluated to an unexpected type.
    TypeMismatch {
        /// What the operation expected.
        expected: &'static str,
        /// What it got.
        got: &'static str,
        /// Where.
        context: &'static str,
    },
    /// A frame bound expression produced an invalid offset (negative, NULL,
    /// or non-numeric).
    InvalidFrameBound(String),
    /// A function was called with an invalid argument (e.g. percentile
    /// fraction outside [0, 1], NTILE bucket count < 1).
    InvalidArgument(String),
    /// The requested feature combination is unsupported (e.g. RANGE frames
    /// over multiple or non-numeric ORDER BY keys).
    Unsupported(String),
    /// Columns of a table have differing lengths.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Offending length.
        got: usize,
    },
    /// Integer overflow in an aggregate result.
    Overflow(&'static str),
    /// An artifact build could not fit in the configured memory budget even
    /// after spilling every cold artifact. Never a panic, never an abort:
    /// budget exhaustion always surfaces as this `Err`.
    BudgetExceeded {
        /// Bytes the failing build needed resident.
        requested: u64,
        /// The configured budget, in bytes.
        budget: u64,
    },
    /// Spill I/O failed (temp-file creation, write, or re-fault). Carries
    /// the rendered `std::io::Error` so the error type stays `Clone + Eq`.
    Spill(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            Error::TypeMismatch { expected, got, context } => {
                write!(f, "type mismatch in {context}: expected {expected}, got {got}")
            }
            Error::InvalidFrameBound(m) => write!(f, "invalid frame bound: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::LengthMismatch { expected, got } => {
                write!(f, "column length mismatch: expected {expected}, got {got}")
            }
            Error::Overflow(what) => write!(f, "integer overflow in {what}"),
            Error::BudgetExceeded { requested, budget } => {
                write!(f, "memory budget exceeded: build needs {requested} B resident, budget is {budget} B")
            }
            Error::Spill(m) => write!(f, "spill I/O failed: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
