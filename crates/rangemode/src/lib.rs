//! # holistic-rangemode — range mode queries for framed MODE aggregates
//!
//! The paper's merge sort tree covers every SQL window function except
//! `DENSE_RANK` — and, outside the standard, the `MODE` aggregate that
//! Wesley & Xu's incremental work also handles. Mode is *not* reducible to
//! the tree's range counting (§3.1 points to dedicated structures [13, 25]);
//! this crate implements the classic √-decomposition range mode index
//! (Krizanc, Morin & Smid):
//!
//! * O(n) space for occurrence lists plus an O((n/s)²) block-span mode
//!   table built in O(n²/s) by extending spans block by block,
//! * queries touching at most 2s boundary elements plus one table lookup.
//!
//! With s = ⌈√n⌉ this gives O(n√n) preprocessing, O(√n log n) per query
//! (see [`RangeModeIndex::query`] for the bound's derivation) — an
//! index-based evaluator for framed MODE that, unlike the incremental
//! algorithm, does not depend on frame overlap (non-monotonic frames cost
//! the same) and probes read-only state (embarrassingly parallel).
//!
//! Values must be pre-compressed to dense ids `0..u`; ties report the
//! *smallest* id, so callers that assign ids in value order get SQL-friendly
//! deterministic ties.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A static range mode index over dense value ids.
pub struct RangeModeIndex {
    values: Vec<u32>,
    /// Occurrence positions per value id, ascending.
    occ: Vec<Vec<u32>>,
    /// Block size (√n).
    s: usize,
    /// `span_mode[bi * nb + bj]` = (mode id, count) of blocks `bi..=bj`
    /// (whole blocks); entries with `bi > bj` are unused.
    span_mode: Vec<(u32, u32)>,
    nb: usize,
}

impl RangeModeIndex {
    /// Builds the index. `u` is the number of distinct ids (all `values`
    /// must be `< u`).
    pub fn build(values: &[u32], u: usize) -> Self {
        let n = values.len();
        let s = (n as f64).sqrt().ceil() as usize;
        let s = s.max(1);
        let nb = n.div_ceil(s).max(1);

        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); u];
        for (i, &v) in values.iter().enumerate() {
            debug_assert!((v as usize) < u, "value id out of range");
            occ[v as usize].push(i as u32);
        }

        // Block-span mode table: for each starting block extend rightwards,
        // maintaining counts. O(nb · n) total.
        let mut span_mode = vec![(0u32, 0u32); nb * nb];
        if n > 0 {
            let mut counts = vec![0u32; u];
            for bi in 0..nb {
                counts.iter_mut().for_each(|c| *c = 0);
                let mut best_id = 0u32;
                let mut best_cnt = 0u32;
                for bj in bi..nb {
                    let lo = bj * s;
                    let hi = ((bj + 1) * s).min(n);
                    for &v in &values[lo..hi] {
                        let c = &mut counts[v as usize];
                        *c += 1;
                        if *c > best_cnt || (*c == best_cnt && v < best_id) {
                            best_cnt = *c;
                            best_id = v;
                        }
                    }
                    span_mode[bi * nb + bj] = (best_id, best_cnt);
                }
            }
        }

        RangeModeIndex { values: values.to_vec(), occ, s, span_mode, nb }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Count of `v`'s occurrences within `[a, b)` (binary searches on the
    /// occurrence list).
    fn count_in(&self, v: u32, a: usize, b: usize) -> u32 {
        let o = &self.occ[v as usize];
        (o.partition_point(|&p| (p as usize) < b) - o.partition_point(|&p| (p as usize) < a)) as u32
    }

    /// The mode of `[a, b)` as `(value id, count)`; ties resolve to the
    /// smallest id; `None` for empty ranges.
    ///
    /// Correctness follows Krizanc–Morin–Smid: the mode of a range is either
    /// the mode of its interior block span or an element occurring in one of
    /// the two partial boundary blocks. We recount the span-mode candidate
    /// over the full range and probe every boundary element with two binary
    /// searches on its occurrence list — O(√n log n) per query (the classic
    /// O(√n) bound uses a frequency-extension trick; the log factor is
    /// irrelevant next to the O(n√n) table build).
    pub fn query(&self, a: usize, b: usize) -> Option<(u32, u32)> {
        let n = self.values.len();
        let b = b.min(n);
        if a >= b {
            return None;
        }
        let s = self.s;
        let bi = a.div_ceil(s);
        let bj = b / s; // exclusive block index
        let (mut best_id, mut best_cnt) = (u32::MAX, 0u32);
        if bi < bj {
            let (span_id, _) = self.span_mode[bi * self.nb + (bj - 1)];
            best_id = span_id;
            best_cnt = self.count_in(span_id, a, b);
        }
        let prefix = (a, (bi * s).min(b));
        let suffix = ((bj * s).max(a), b);
        for &(lo, hi) in &[prefix, suffix] {
            for i in lo..hi {
                let v = self.values[i];
                if v == best_id {
                    continue;
                }
                let c = self.count_in(v, a, b);
                if c > best_cnt || (c == best_cnt && v < best_id) {
                    best_cnt = c;
                    best_id = v;
                }
            }
        }
        if best_cnt == 0 {
            None
        } else {
            Some((best_id, best_cnt))
        }
    }

    /// The mode over a union of disjoint ascending ranges. Exact but
    /// O(total range length) in the worst case — used for frames with
    /// exclusion holes where the union mode is not decomposable; plain
    /// frames should call [`Self::query`].
    pub fn query_multi(&self, ranges: &[(usize, usize)]) -> Option<(u32, u32)> {
        let mut counts: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for &(a, b) in ranges {
            for i in a..b.min(self.values.len()) {
                *counts.entry(self.values[i]).or_insert(0) += 1;
            }
        }
        counts.into_iter().max_by(|(v1, c1), (v2, c2)| c1.cmp(c2).then(v2.cmp(v1)))
    }

    /// Bytes used by the index (space accounting for EXPERIMENTS.md).
    pub fn bytes(&self) -> usize {
        self.values.len() * 4
            + self.occ.iter().map(|o| o.len() * 4).sum::<usize>()
            + self.span_mode.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute(values: &[u32], a: usize, b: usize) -> Option<(u32, u32)> {
        let b = b.min(values.len());
        if a >= b {
            return None;
        }
        let mut counts = std::collections::HashMap::new();
        for &v in &values[a..b] {
            *counts.entry(v).or_insert(0u32) += 1;
        }
        counts.into_iter().max_by(|(v1, c1), (v2, c2)| c1.cmp(c2).then(v2.cmp(v1)))
    }

    #[test]
    fn small_fixed_cases() {
        let vals = vec![2u32, 1, 2, 0, 1, 2];
        let idx = RangeModeIndex::build(&vals, 3);
        assert_eq!(idx.query(0, 6), Some((2, 3)));
        assert_eq!(idx.query(1, 5), Some((1, 2)));
        assert_eq!(idx.query(3, 4), Some((0, 1)));
        assert_eq!(idx.query(2, 2), None);
        // Tie between 1 (positions 1,4) and 2 (2,5) in [1,6): both 2 → id 1.
        assert_eq!(idx.query(1, 6), Some((1, 2)));
    }

    #[test]
    fn empty_and_singleton() {
        let idx = RangeModeIndex::build(&[], 0);
        assert!(idx.is_empty());
        assert_eq!(idx.query(0, 0), None);
        let idx = RangeModeIndex::build(&[0], 1);
        assert_eq!(idx.query(0, 1), Some((0, 1)));
    }

    #[test]
    fn random_matches_brute() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let n = rng.gen_range(1..400);
            let u = rng.gen_range(1..20usize);
            let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..u as u32)).collect();
            let idx = RangeModeIndex::build(&vals, u);
            for _ in 0..200 {
                let a = rng.gen_range(0..=n);
                let b = rng.gen_range(0..=n + 2);
                assert_eq!(
                    idx.query(a, b),
                    brute(&vals, a, b),
                    "n={n} u={u} a={a} b={b} vals={vals:?}"
                );
            }
        }
    }

    #[test]
    fn skewed_distributions() {
        // One dominant value plus noise.
        let mut rng = StdRng::seed_from_u64(32);
        let n = 300;
        let vals: Vec<u32> =
            (0..n).map(|_| if rng.gen_bool(0.6) { 7 } else { rng.gen_range(0..20) }).collect();
        let idx = RangeModeIndex::build(&vals, 20);
        for a in (0..n).step_by(13) {
            for b in (a..=n).step_by(17) {
                assert_eq!(idx.query(a, b), brute(&vals, a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn query_multi_counts_unions() {
        let vals = vec![0u32, 1, 1, 2, 0, 0];
        let idx = RangeModeIndex::build(&vals, 3);
        // [0,2) ∪ [4,6): values 0,1,0,0 → mode 0 × 3.
        assert_eq!(idx.query_multi(&[(0, 2), (4, 6)]), Some((0, 3)));
        assert_eq!(idx.query_multi(&[(2, 2)]), None);
    }
}
