//! Property-based tests for the range mode index.

use holistic_rangemode::RangeModeIndex;
use proptest::prelude::*;
use std::collections::HashMap;

fn brute(values: &[u32], a: usize, b: usize) -> Option<(u32, u32)> {
    let b = b.min(values.len());
    if a >= b {
        return None;
    }
    let mut counts = HashMap::new();
    for &v in &values[a..b] {
        *counts.entry(v).or_insert(0u32) += 1;
    }
    counts.into_iter().max_by(|(v1, c1), (v2, c2)| c1.cmp(c2).then(v2.cmp(v1)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn query_matches_brute(
        u in 1usize..25,
        raw in prop::collection::vec(0u32..100, 0..300),
        queries in prop::collection::vec((0usize..320, 0usize..320), 1..40),
    ) {
        let values: Vec<u32> = raw.iter().map(|&v| v % u as u32).collect();
        let idx = RangeModeIndex::build(&values, u);
        for (a, b) in queries {
            prop_assert_eq!(idx.query(a, b), brute(&values, a, b), "a={} b={}", a, b);
        }
    }

    #[test]
    fn query_multi_matches_union_scan(
        u in 1usize..10,
        raw in prop::collection::vec(0u32..50, 1..150),
        r1 in (0usize..150, 0usize..150),
        r2 in (0usize..150, 0usize..150),
    ) {
        let values: Vec<u32> = raw.iter().map(|&v| v % u as u32).collect();
        let n = values.len();
        let (a1, b1) = (r1.0.min(n), r1.1.min(n).max(r1.0.min(n)));
        let (a2, b2) = (r2.0.min(n).max(b1), r2.1.min(n).max(r2.0.min(n).max(b1)));
        let idx = RangeModeIndex::build(&values, u);
        // Brute over the union.
        let mut counts = HashMap::new();
        for &(a, b) in &[(a1, b1), (a2, b2)] {
            for &v in &values[a..b] {
                *counts.entry(v).or_insert(0u32) += 1;
            }
        }
        let expect =
            counts.into_iter().max_by(|(v1, c1), (v2, c2)| c1.cmp(c2).then(v2.cmp(v1)));
        prop_assert_eq!(idx.query_multi(&[(a1, b1), (a2, b2)]), expect);
    }

    #[test]
    fn mode_count_is_maximal(
        raw in prop::collection::vec(0u32..6, 1..200),
        a in 0usize..200,
        b in 0usize..200,
    ) {
        let values = raw;
        let n = values.len();
        let (a, b) = (a.min(n), b.min(n).max(a.min(n)));
        let idx = RangeModeIndex::build(&values, 6);
        if let Some((v, c)) = idx.query(a, b) {
            // The reported count is correct and no value beats it.
            let actual = values[a..b].iter().filter(|&&x| x == v).count() as u32;
            prop_assert_eq!(c, actual);
            for probe in 0..6u32 {
                let pc = values[a..b].iter().filter(|&&x| x == probe).count() as u32;
                prop_assert!(pc < c || (pc == c && probe >= v));
            }
        } else {
            prop_assert_eq!(a, b);
        }
    }
}
