//! Simulators of the "traditional SQL" formulations and the client-side
//! tool of Figure 9 (§6.2).
//!
//! Without the paper's SQL extensions, a framed median must be written as a
//! correlated subquery or a self join over row numbers. All evaluated systems
//! (PostgreSQL, DuckDB, Hyper) execute those as O(n²) nested loops; we run
//! precisely those plans. Tableau's client-side `WINDOW_MEDIAN` is simulated
//! by the same incremental algorithm an application-layer interpreter would
//! use, with per-row dynamic dispatch and value boxing to model interpreter
//! overhead.
//!
//! All functions take `values` already sorted by the window ORDER BY and a
//! trailing window of `w` rows (`ROWS BETWEEN w-1 PRECEDING AND CURRENT
//! ROW`), matching the benchmark query of §6.2.

/// PERCENTILE_DISC(0.5) of a sorted slice.
fn median_of_sorted(w: &[i64]) -> i64 {
    let j = ((0.5 * w.len() as f64).ceil() as usize).clamp(1, w.len());
    w[j - 1]
}

/// The correlated-subquery plan: for every outer row, *scan the entire
/// inner relation* for rows whose row number falls into the window, then
/// aggregate. O(n²) scanning + O(n · w log w) aggregation.
pub fn correlated_subquery_median(values: &[i64], w: usize) -> Vec<i64> {
    let n = values.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = (i + 1).saturating_sub(w);
        // The subquery's predicate `l2.rn BETWEEN l1.rn - (w-1) AND l1.rn`
        // is evaluated against every inner row — no index exists.
        let mut window = Vec::new();
        for (j, &v) in values.iter().enumerate() {
            if j >= lo && j <= i {
                window.push(v);
            }
        }
        window.sort_unstable();
        out.push(median_of_sorted(&window));
    }
    out
}

/// The self-join plan: a nested-loop band join materializes every
/// (outer, inner) pair before the group-by computes medians. O(n · w) pair
/// materialization on top of the O(n²) join predicate evaluations.
pub fn self_join_median(values: &[i64], w: usize) -> Vec<i64> {
    let n = values.len();
    // Band join: emit (i, value_j) pairs.
    let mut pairs: Vec<(u32, i64)> = Vec::new();
    for i in 0..n {
        let lo = (i + 1).saturating_sub(w);
        for (j, &v) in values.iter().enumerate() {
            if j >= lo && j <= i {
                pairs.push((i as u32, v));
            }
        }
    }
    // Group by the outer row number and aggregate.
    pairs.sort_unstable();
    let mut out = Vec::with_capacity(n);
    let mut s = 0usize;
    while s < pairs.len() {
        let key = pairs[s].0;
        let mut e = s;
        while e < pairs.len() && pairs[e].0 == key {
            e += 1;
        }
        let mut window: Vec<i64> = pairs[s..e].iter().map(|&(_, v)| v).collect();
        window.sort_unstable();
        out.push(median_of_sorted(&window));
        s = e;
    }
    out
}

/// A dynamically typed cell, as an application-layer interpreter holds it.
#[derive(Clone)]
enum Cell {
    Num(f64),
    #[allow(dead_code)]
    Str(String),
    #[allow(dead_code)]
    Missing,
}

/// The client-side tool: a `WINDOW_MEDIAN` table calculation interpreted in
/// the application layer — single-threaded, dynamically typed, re-evaluating
/// the window for every row through field-name lookups and boxed comparator
/// calls (the O(n · w) evaluation model that motivated Wesley & Xu's work;
/// the interpreter overhead dominates even where better algorithms exist).
pub fn client_tool_median(values: &[i64], w: usize) -> Vec<i64> {
    use rustc_hash::FxHashMap;
    // The tool materializes its working table as rows of name→cell maps.
    let rows: Vec<FxHashMap<String, Cell>> = values
        .iter()
        .map(|&v| {
            let mut m = FxHashMap::default();
            m.insert("measure".to_string(), Cell::Num(v as f64));
            m
        })
        .collect();
    let field = "measure";
    let as_num: Box<dyn Fn(&Cell) -> f64> = Box::new(|c| match c {
        Cell::Num(x) => *x,
        _ => f64::NAN,
    });
    type Comparator = Box<dyn Fn(&Cell, &Cell) -> std::cmp::Ordering>;
    let cmp: Comparator = Box::new(move |a, b| as_num(a).total_cmp(&as_num(b)));

    let mut out = Vec::with_capacity(values.len());
    for i in 0..rows.len() {
        let lo = (i + 1).saturating_sub(w);
        // Re-gather the window's cells for this row (the table calc is
        // re-evaluated per mark).
        let mut window: Vec<Cell> = rows[lo..=i].iter().map(|r| r[field].clone()).collect();
        window.sort_by(|a, b| cmp(a, b));
        let j = ((0.5 * window.len() as f64).ceil() as usize).clamp(1, window.len());
        out.push(match &window[j - 1] {
            Cell::Num(x) => *x as i64,
            _ => 0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn oracle(values: &[i64], w: usize) -> Vec<i64> {
        (0..values.len())
            .map(|i| {
                let lo = (i + 1).saturating_sub(w);
                let mut win: Vec<i64> = values[lo..=i].to_vec();
                win.sort_unstable();
                median_of_sorted(&win)
            })
            .collect()
    }

    #[test]
    fn all_plans_agree_with_oracle() {
        let mut rng = StdRng::seed_from_u64(13);
        let values: Vec<i64> = (0..200).map(|_| rng.gen_range(0..1000)).collect();
        for w in [1usize, 3, 25, 200, 500] {
            let expect = oracle(&values, w);
            assert_eq!(correlated_subquery_median(&values, w), expect, "subquery w={w}");
            assert_eq!(self_join_median(&values, w), expect, "self join w={w}");
            assert_eq!(client_tool_median(&values, w), expect, "client w={w}");
        }
    }

    #[test]
    fn single_row() {
        assert_eq!(correlated_subquery_median(&[42], 10), vec![42]);
        assert_eq!(self_join_median(&[42], 10), vec![42]);
        assert_eq!(client_tool_median(&[42], 10), vec![42]);
    }
}
