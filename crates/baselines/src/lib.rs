//! # holistic-baselines — every comparator from the paper's evaluation
//!
//! * [`naive`] — per-row re-evaluation from scratch, O(n · frame). Twice
//!   useful: it is the paper's "naive" competitor *and* an independent
//!   semantics oracle for the merge-sort-tree engine (every function is
//!   re-derived from the SQL definition with plain scans).
//! * [`incremental`] — Wesley & Xu's sliding-state algorithms (PVLDB 2016):
//!   hash-multiset distinct counts, ordered-multiset percentiles, and modes.
//! * [`ostree`] — an order-statistic counted B-tree (Tatham-style), the
//!   `O(n log n)` serial competitor for percentiles and ranks (§5.5).
//! * [`taskpar`] — task-based parallel wrappers that split the output into
//!   fixed-size tasks and re-warm per-task state, reproducing §3.2's
//!   quadratic parallelization penalty for stateful algorithms.
//! * [`sqlsim`] — the "traditional SQL" rewritings of Figure 9 (correlated
//!   subquery and self join), executed as the nested-loop plans real
//!   optimizers produce for them, plus the client-side-tool simulator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod incremental;
pub mod naive;
pub mod ostree;
pub mod sqlsim;
pub mod taskpar;
