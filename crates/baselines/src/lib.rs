//! # holistic-baselines — every comparator from the paper's evaluation
//!
//! * [`naive`] — per-row re-evaluation from scratch, O(n · frame). Twice
//!   useful: it is the paper's "naive" competitor *and* an independent
//!   semantics oracle for the merge-sort-tree engine (every function is
//!   re-derived from the SQL definition with plain scans).
//! * [`incremental`] — Wesley & Xu's sliding-state algorithms (PVLDB 2016):
//!   hash-multiset distinct counts, ordered-multiset percentiles, and modes.
//! * [`ostree`] — an order-statistic counted B-tree (Tatham-style), the
//!   `O(n log n)` serial competitor for percentiles and ranks (§5.5).
//! * [`taskpar`] — task-based parallel wrappers that split the output into
//!   fixed-size tasks and re-warm per-task state, reproducing §3.2's
//!   quadratic parallelization penalty for stateful algorithms.
//! * [`sqlsim`] — the "traditional SQL" rewritings of Figure 9 (correlated
//!   subquery and self join), executed as the nested-loop plans real
//!   optimizers produce for them, plus the client-side-tool simulator.
//!
//! Since the strategy-layer refactor, the algorithm kernels (`incremental`,
//! `ostree`, `taskpar`) live in the dependency-free `holistic-strategies`
//! crate so the window executor can pick them per partition; this crate
//! re-exports them unchanged and keeps the engine-coupled comparators
//! ([`naive`], [`sqlsim`]) local.
//!
//! ```
//! use holistic_baselines::ostree::OrderStatisticTree;
//!
//! let mut t = OrderStatisticTree::new();
//! for v in [5i64, 1, 3, 3, 9] {
//!     t.insert(v);
//! }
//! assert_eq!(t.select(0), Some(1)); // smallest
//! assert_eq!(t.rank(4), 3); // values strictly below 4
//! assert_eq!(t.percentile_disc(0.5), Some(3));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use holistic_strategies::{incremental, ostree, taskpar};

pub mod naive;
pub mod sqlsim;
