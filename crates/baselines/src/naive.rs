//! Naive per-row evaluation — the O(n · frame) competitor and the semantics
//! oracle.
//!
//! Every function is derived directly from its SQL definition with plain
//! scans over the frame, sharing no evaluation code with the merge sort tree
//! engine (only the partition/sort/frame plumbing, which both sides need to
//! agree on by construction).

use holistic_window::error::Result;
use holistic_window::expr::BoundExpr;
use holistic_window::frame::{resolve_frames, ResolvedFrames};
use holistic_window::hash::hash_value;
use holistic_window::order::{sort_permutation, KeyColumns};
use holistic_window::partition::partition_rows;
use holistic_window::spec::{FuncKind, FunctionCall, WindowSpec};
use holistic_window::{Column, Error, Table, Value, WindowQuery};
use rustc_hash::FxHashSet;
use std::cmp::Ordering;

/// Executes a window query with the naive algorithm; output matches
/// [`WindowQuery::execute`] row for row.
pub fn execute(query: &WindowQuery, table: &Table) -> Result<Table> {
    let n = table.num_rows();
    for call in &query.calls {
        call.validate()?;
    }
    let partitions = partition_rows(table, &query.spec.partition_by)?;
    let window_keys = KeyColumns::evaluate(table, &query.spec.order_by)?;

    let mut out_values: Vec<Vec<Value>> =
        query.calls.iter().map(|_| vec![Value::Null; n]).collect();
    for part in &partitions {
        let mut rows = part.clone();
        sort_permutation(&window_keys, &mut rows, false);
        let frames = resolve_frames(table, &rows, &window_keys, &query.spec.frame)?;
        for (ci, call) in query.calls.iter().enumerate() {
            let vals = eval_call(table, &rows, &frames, &window_keys, call)?;
            for (pos, &row) in rows.iter().enumerate() {
                out_values[ci][row] = vals[pos].clone();
            }
        }
    }
    let mut out = Table::empty();
    for (ci, call) in query.calls.iter().enumerate() {
        out.add_column(call.output_name.clone(), Column::from_values(&out_values[ci])?)?;
    }
    Ok(out)
}

/// Shorthand: builds the query from a spec + calls and executes naively.
pub fn execute_spec(table: &Table, spec: WindowSpec, calls: Vec<FunctionCall>) -> Result<Table> {
    let mut q = WindowQuery::over(spec);
    for c in calls {
        q = q.call(c);
    }
    execute(&q, table)
}

struct NaiveCtx<'a> {
    table: &'a Table,
    rows: &'a [usize],
    frames: &'a ResolvedFrames,
    /// FILTER result per position.
    filter: Vec<bool>,
    /// First-argument value per position (empty if no args).
    arg0: Vec<Value>,
    /// Inner-order key columns (falls back to the window keys).
    keys: &'a KeyColumns,
    /// First inner key value per position (percentile output).
    key0: Vec<Value>,
    has_inner_order: bool,
}

impl NaiveCtx<'_> {
    fn m(&self) -> usize {
        self.rows.len()
    }

    /// Frame positions of row `i` (after exclusion), in position order.
    fn frame_positions(&self, i: usize) -> Vec<usize> {
        self.frames.range_set(i).iter().flat_map(|(a, b)| a..b).collect()
    }

    /// Compares two positions by the inner keys, ties by position.
    fn cmp_inner(&self, a: usize, b: usize) -> Ordering {
        self.keys.cmp_rows(self.rows[a], self.rows[b]).then(a.cmp(&b))
    }

    /// Compares by keys only (peer test).
    fn key_cmp(&self, a: usize, b: usize) -> Ordering {
        self.keys.cmp_rows(self.rows[a], self.rows[b])
    }
}

fn eval_call(
    table: &Table,
    rows: &[usize],
    frames: &ResolvedFrames,
    window_keys: &KeyColumns,
    call: &FunctionCall,
) -> Result<Vec<Value>> {
    let m = rows.len();
    let filter: Vec<bool> = match &call.filter {
        None => vec![true; m],
        Some(f) => {
            let b = f.bind(table)?;
            rows.iter().map(|&r| Ok(b.eval(table, r)?.is_truthy())).collect::<Result<Vec<_>>>()?
        }
    };
    let eval_all =
        |e: &BoundExpr| -> Result<Vec<Value>> { rows.iter().map(|&r| e.eval(table, r)).collect() };
    let arg0: Vec<Value> = match call.args.first() {
        Some(e) => eval_all(&e.bind(table)?)?,
        None => Vec::new(),
    };
    let key0: Vec<Value> = match call.inner_order.first() {
        Some(k) => eval_all(&k.expr.bind(table)?)?,
        None => Vec::new(),
    };
    // Rank functions with no inner order fall back to the window ORDER BY as
    // their ranking criterion, matching the engine.
    let inner_keys_owned;
    let keys: &KeyColumns = if call.inner_order.is_empty() {
        window_keys
    } else {
        inner_keys_owned = KeyColumns::evaluate(table, &call.inner_order)?;
        &inner_keys_owned
    };
    let ctx = NaiveCtx {
        table,
        rows,
        frames,
        filter,
        arg0,
        keys,
        key0,
        has_inner_order: !call.inner_order.is_empty(),
    };
    dispatch(&ctx, call)
}

fn dispatch(ctx: &NaiveCtx<'_>, call: &FunctionCall) -> Result<Vec<Value>> {
    let m = ctx.m();
    let mut out = Vec::with_capacity(m);
    for i in 0..m {
        out.push(eval_row(ctx, call, i)?);
    }
    Ok(out)
}

fn eval_row(ctx: &NaiveCtx<'_>, call: &FunctionCall, i: usize) -> Result<Value> {
    use FuncKind::*;
    let fp = ctx.frame_positions(i);
    match call.kind {
        CountStar => Ok(Value::Int(fp.iter().filter(|&&p| ctx.filter[p]).count() as i64)),
        Count if call.distinct => {
            let mut seen = FxHashSet::default();
            let c = fp
                .iter()
                .filter(|&&p| ctx.filter[p] && !ctx.arg0[p].is_null())
                .filter(|&&p| seen.insert(hash_value(&ctx.arg0[p])))
                .count();
            Ok(Value::Int(c as i64))
        }
        Count => Ok(Value::Int(
            fp.iter().filter(|&&p| ctx.filter[p] && !ctx.arg0[p].is_null()).count() as i64,
        )),
        Sum | Avg => {
            let mut seen = FxHashSet::default();
            let mut sum_i: i128 = 0;
            let mut sum_f: f64 = 0.0;
            let mut any_float = false;
            let mut cnt = 0usize;
            for &p in &fp {
                if !ctx.filter[p] || ctx.arg0[p].is_null() {
                    continue;
                }
                if call.distinct && !seen.insert(hash_value(&ctx.arg0[p])) {
                    continue;
                }
                match &ctx.arg0[p] {
                    Value::Int(x) => {
                        sum_i += *x as i128;
                        sum_f += *x as f64;
                    }
                    Value::Float(x) => {
                        any_float = true;
                        sum_f += x;
                    }
                    v => {
                        return Err(Error::TypeMismatch {
                            expected: "numeric",
                            got: v.type_name(),
                            context: "naive SUM/AVG",
                        })
                    }
                }
                cnt += 1;
            }
            if cnt == 0 {
                return Ok(Value::Null);
            }
            Ok(if call.kind == Avg {
                Value::Float(sum_f / cnt as f64)
            } else if any_float {
                Value::Float(sum_f)
            } else {
                match i64::try_from(sum_i) {
                    Ok(x) => Value::Int(x),
                    Err(_) => Value::Float(sum_i as f64),
                }
            })
        }
        Min | Max => {
            let mut best: Option<&Value> = None;
            for &p in &fp {
                if !ctx.filter[p] || ctx.arg0[p].is_null() {
                    continue;
                }
                let v = &ctx.arg0[p];
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let lt = v.sql_cmp(b) == Ordering::Less;
                        if (call.kind == Min) == lt {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.cloned().unwrap_or(Value::Null))
        }
        RowNumber => {
            let c = fp
                .iter()
                .filter(|&&p| ctx.filter[p])
                .filter(|&&p| ctx.cmp_inner(p, i) == Ordering::Less)
                .count();
            Ok(Value::Int(c as i64 + 1))
        }
        Rank => {
            let c = fp
                .iter()
                .filter(|&&p| ctx.filter[p])
                .filter(|&&p| ctx.key_cmp(p, i) == Ordering::Less)
                .count();
            Ok(Value::Int(c as i64 + 1))
        }
        DenseRank => {
            let smaller: Vec<usize> = fp
                .iter()
                .copied()
                .filter(|&p| ctx.filter[p] && ctx.key_cmp(p, i) == Ordering::Less)
                .collect();
            let mut distinct = 0usize;
            for (a, &p) in smaller.iter().enumerate() {
                if smaller[..a].iter().all(|&q| ctx.key_cmp(q, p) != Ordering::Equal) {
                    distinct += 1;
                }
            }
            Ok(Value::Int(distinct as i64 + 1))
        }
        PercentRank => {
            let size = fp.iter().filter(|&&p| ctx.filter[p]).count();
            if size == 0 {
                return Ok(Value::Null);
            }
            let rank = fp
                .iter()
                .filter(|&&p| ctx.filter[p])
                .filter(|&&p| ctx.key_cmp(p, i) == Ordering::Less)
                .count()
                + 1;
            Ok(Value::Float(if size <= 1 { 0.0 } else { (rank - 1) as f64 / (size - 1) as f64 }))
        }
        CumeDist => {
            let size = fp.iter().filter(|&&p| ctx.filter[p]).count();
            if size == 0 {
                return Ok(Value::Null);
            }
            let le = fp
                .iter()
                .filter(|&&p| ctx.filter[p])
                .filter(|&&p| ctx.key_cmp(p, i) != Ordering::Greater)
                .count();
            Ok(Value::Float(le as f64 / size as f64))
        }
        Ntile => {
            let b = match call.args[0].bind(ctx.table)?.eval(ctx.table, ctx.rows[i])? {
                Value::Int(x) if x >= 1 => x as usize,
                Value::Null => return Ok(Value::Null),
                v => {
                    return Err(Error::InvalidArgument(format!(
                        "ntile: bucket count must be a positive integer, got {v}"
                    )))
                }
            };
            let size = fp.iter().filter(|&&p| ctx.filter[p]).count();
            if size == 0 {
                return Ok(Value::Null);
            }
            let rn = fp
                .iter()
                .filter(|&&p| ctx.filter[p])
                .filter(|&&p| ctx.cmp_inner(p, i) == Ordering::Less)
                .count()
                + 1;
            // SQL NTILE: first (size % b) buckets hold one extra row.
            let q = size / b;
            let r = size % b;
            let tile = if q == 0 {
                rn
            } else if rn <= r * (q + 1) {
                (rn - 1) / (q + 1) + 1
            } else {
                r + (rn - 1 - r * (q + 1)) / q + 1
            };
            Ok(Value::Int(tile as i64))
        }
        PercentileDisc | PercentileCont | Median => {
            let p = if call.kind == Median {
                0.5
            } else {
                match call.args[0].bind(ctx.table)?.eval(ctx.table, ctx.rows[i])?.as_f64() {
                    Some(f) if (0.0..=1.0).contains(&f) => f,
                    other => {
                        return Err(Error::InvalidArgument(format!(
                            "percentile fraction invalid: {other:?}"
                        )))
                    }
                }
            };
            let mut kept: Vec<usize> =
                fp.iter().copied().filter(|&q| ctx.filter[q] && !ctx.key0[q].is_null()).collect();
            kept.sort_by(|&a, &b| ctx.cmp_inner(a, b));
            let s = kept.len();
            if s == 0 {
                return Ok(Value::Null);
            }
            if call.kind == PercentileCont {
                let rn = p * (s - 1) as f64;
                let (lo, hi) = (rn.floor() as usize, rn.ceil() as usize);
                let (x, y) = (
                    ctx.key0[kept[lo]].as_f64().ok_or(Error::TypeMismatch {
                        expected: "numeric",
                        got: "non-numeric",
                        context: "naive percentile_cont",
                    })?,
                    ctx.key0[kept[hi]].as_f64().ok_or(Error::TypeMismatch {
                        expected: "numeric",
                        got: "non-numeric",
                        context: "naive percentile_cont",
                    })?,
                );
                Ok(Value::Float(x + (y - x) * (rn - lo as f64)))
            } else {
                let j = ((p * s as f64).ceil() as usize).clamp(1, s);
                Ok(ctx.key0[kept[j - 1]].clone())
            }
        }
        FirstValue | LastValue | NthValue => {
            let mut kept: Vec<usize> = fp
                .iter()
                .copied()
                .filter(|&q| ctx.filter[q] && (!call.ignore_nulls || !ctx.arg0[q].is_null()))
                .collect();
            if ctx.has_inner_order {
                kept.sort_by(|&a, &b| ctx.cmp_inner(a, b));
            }
            let s = kept.len();
            let j = match call.kind {
                FirstValue => 1,
                LastValue => s,
                NthValue => match call.args[1].bind(ctx.table)?.eval(ctx.table, ctx.rows[i])? {
                    Value::Int(x) if x >= 1 => x as usize,
                    Value::Null => return Ok(Value::Null),
                    v => {
                        return Err(Error::InvalidArgument(format!(
                            "nth_value: n must be a positive integer, got {v}"
                        )))
                    }
                },
                _ => unreachable!(),
            };
            Ok(if j >= 1 && j <= s { ctx.arg0[kept[j - 1]].clone() } else { Value::Null })
        }
        Mode => {
            // Most frequent non-null value; ties resolve to the smallest.
            let mut kept: Vec<&Value> = fp
                .iter()
                .filter(|&&p| ctx.filter[p] && !ctx.arg0[p].is_null())
                .map(|&p| &ctx.arg0[p])
                .collect();
            if kept.is_empty() {
                return Ok(Value::Null);
            }
            kept.sort_by(|a, b| a.sql_cmp(b));
            let mut best: (&Value, usize) = (kept[0], 0);
            let mut run_start = 0usize;
            for i in 0..=kept.len() {
                if i == kept.len() || !kept[i].sql_eq(kept[run_start]) {
                    let len = i - run_start;
                    if len > best.1 {
                        best = (kept[run_start], len);
                    }
                    run_start = i;
                }
            }
            Ok(best.0.clone())
        }
        Lead | Lag => {
            let off_raw = match call.args.get(1) {
                None => 1,
                Some(e) => match e.bind(ctx.table)?.eval(ctx.table, ctx.rows[i])? {
                    Value::Int(x) => x,
                    Value::Null => return Ok(Value::Null),
                    v => {
                        return Err(Error::InvalidArgument(format!(
                            "lead/lag offset must be an integer, got {v}"
                        )))
                    }
                },
            };
            // LAG negates; saturate `-i64::MIN` (out of range for every
            // partition either way, and the target arithmetic is checked).
            let off =
                if call.kind == Lag { off_raw.checked_neg().unwrap_or(i64::MAX) } else { off_raw };
            let default = match call.args.get(2) {
                Some(d) => d.bind(ctx.table)?.eval(ctx.table, ctx.rows[i])?,
                None => Value::Null,
            };
            // `base + off` bounds-checked into [0, len); overflow ≡ out of
            // range.
            let target_position = |base: usize, len: usize| {
                (base as i64)
                    .checked_add(off)
                    .and_then(|t| usize::try_from(t).ok())
                    .filter(|&t| t < len)
            };
            if !ctx.has_inner_order {
                // Classic positional semantics (frame ignored). Offset 0 is
                // the current row, even under IGNORE NULLS.
                if call.ignore_nulls && off != 0 {
                    let nn: Vec<usize> = (0..ctx.m()).filter(|&p| !ctx.arg0[p].is_null()).collect();
                    let target = if off > 0 {
                        let idx = nn.partition_point(|&p| p <= i);
                        idx.checked_add(off as usize).and_then(|t| t.checked_sub(1))
                    } else {
                        let idx = nn.partition_point(|&p| p < i);
                        usize::try_from(off.unsigned_abs()).ok().and_then(|o| idx.checked_sub(o))
                    };
                    return Ok(match target.and_then(|t| nn.get(t)) {
                        Some(&p) => ctx.arg0[p].clone(),
                        None => default,
                    });
                }
                return Ok(match target_position(i, ctx.m()) {
                    Some(t) => ctx.arg0[t].clone(),
                    None => default,
                });
            }
            // Framed semantics (§4.6).
            let mut kept: Vec<usize> = fp
                .iter()
                .copied()
                .filter(|&q| ctx.filter[q] && (!call.ignore_nulls || !ctx.arg0[q].is_null()))
                .collect();
            kept.sort_by(|&a, &b| ctx.cmp_inner(a, b));
            let rn0 = kept.iter().filter(|&&p| ctx.cmp_inner(p, i) == Ordering::Less).count();
            Ok(match target_position(rn0, kept.len()) {
                Some(t) => ctx.arg0[kept[t]].clone(),
                None => default,
            })
        }
    }
}
