//! Property-based tests for the 3-d range counting tree.

use holistic_rangetree::RangeTree3;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counts_match_brute_force(
        pairs in prop::collection::vec((0u32..40, 0u32..40), 0..200),
        queries in prop::collection::vec(
            (0usize..210, 0usize..210, 0u32..45, 0u32..45), 1..30),
    ) {
        let xs: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<u32> = pairs.iter().map(|p| p.1).collect();
        let t = RangeTree3::build(&xs, &ys, false);
        for (a, b, c, d) in queries {
            let expect = (a..b.min(xs.len()).max(a.min(xs.len())))
                .filter(|&i| i < xs.len() && xs[i] < c && ys[i] < d)
                .count();
            prop_assert_eq!(t.count(a.min(xs.len()), b, c, d), expect);
        }
    }

    #[test]
    fn degenerate_thresholds(
        pairs in prop::collection::vec((0u32..10, 0u32..10), 1..100),
    ) {
        let xs: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<u32> = pairs.iter().map(|p| p.1).collect();
        let n = xs.len();
        let t = RangeTree3::build(&xs, &ys, false);
        // Zero thresholds count nothing; max thresholds count everything.
        prop_assert_eq!(t.count(0, n, 0, u32::MAX), 0);
        prop_assert_eq!(t.count(0, n, u32::MAX, 0), 0);
        prop_assert_eq!(t.count(0, n, u32::MAX, u32::MAX), n);
        prop_assert_eq!(t.count(n, n, u32::MAX, u32::MAX), 0);
    }

    #[test]
    fn dense_rank_identity(
        keys in prop::collection::vec(0u32..8, 1..120),
        frames in prop::collection::vec((0usize..130, 0usize..130), 1..12),
    ) {
        // DENSE_RANK = distinct smaller keys in frame + 1, via the
        // prev-occurrence encoding (§4.4).
        let prev: Vec<u32> = holistic_core::prev_idcs_by_key(&keys, false)
            .iter()
            .map(|&p| p as u32)
            .collect();
        let t = RangeTree3::build(&keys, &prev, false);
        let n = keys.len();
        for (a, b) in frames {
            let (a, b) = (a.min(n), b.min(n).max(a.min(n)));
            for i in a..b {
                let got = t.count(a, b, keys[i], a as u32 + 1) + 1;
                let distinct: std::collections::HashSet<u32> =
                    keys[a..b].iter().copied().filter(|&k| k < keys[i]).collect();
                prop_assert_eq!(got, distinct.len() + 1, "i={} a={} b={}", i, a, b);
            }
        }
    }
}
