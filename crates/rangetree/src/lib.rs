//! # holistic-rangetree — multidimensional range counting for DENSE_RANK
//!
//! A framed `DENSE_RANK` counts the *distinct* ranking keys inside the window
//! frame that compare smaller than the current row's key (§4.4). With the
//! previous-occurrence preprocessing of §4.2 this becomes a 3-dimensional
//! range counting query:
//!
//! > among positions `[a, b)`, count rows with `code < c` **and**
//! > `prev_occurrence < frame start`,
//!
//! which a merge sort tree (2-d only) cannot answer. Following Bentley's
//! range trees, [`RangeTree3`] layers a binary position tree whose runs are
//! sorted by the second dimension, each annotated with an *inner merge sort
//! tree* over the third dimension. A query decomposes the position range into
//! O(log n) runs, binary-searches the second dimension in each, and lets the
//! inner tree count the third — O((log n)²) per query and O(n (log n)²)
//! space, exactly the bounds the paper quotes for framed DENSE_RANK.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use holistic_core::{MergeSortTree, MstParams};
use rayon::prelude::*;

/// A static 3-d range counting structure over implicit positions and two
/// `u32` value dimensions (`x`, `y`).
///
/// Storage follows the arena discipline of `holistic-core`: all levels' `x`
/// arrays live level-major in one allocation (each level holds exactly `n`
/// values) and every inner `y` tree is itself a single arena, so a query
/// touches O(log n) flat buffers instead of per-level vectors.
pub struct RangeTree3 {
    /// Level-major `x` arrays: level ℓ (runs of length 2^ℓ sorted by `x`)
    /// occupies `[ℓ·n, (ℓ+1)·n)`.
    xs: Vec<u32>,
    /// Per level: an inner merge sort tree over the co-permuted `y` values.
    ytrees: Vec<MergeSortTree<u32>>,
    n: usize,
}

impl RangeTree3 {
    /// Builds over parallel arrays `xs`/`ys` (row `i` has coordinates
    /// `(i, xs[i], ys[i])`). O(n log n) build work per level, O(log n) levels.
    pub fn build(xs: &[u32], ys: &[u32], parallel: bool) -> Self {
        assert_eq!(xs.len(), ys.len());
        let n = xs.len();
        let params = if parallel { MstParams::default() } else { MstParams::default().serial() };
        let mut height = 1usize;
        let mut top_run = 1usize;
        while top_run < n.max(1) {
            top_run *= 2;
            height += 1;
        }
        let mut xs_arena = vec![0u32; height * n];
        let mut ytrees = Vec::with_capacity(height);
        let mut pairs: Vec<(u32, u32)> = xs.iter().copied().zip(ys.iter().copied()).collect();
        let mut run = 1usize;
        loop {
            let lvl = ytrees.len();
            let level_ys: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            for (slot, p) in xs_arena[lvl * n..(lvl + 1) * n].iter_mut().zip(&pairs) {
                *slot = p.0;
            }
            ytrees.push(MergeSortTree::build(&level_ys, params));
            if run >= n.max(1) {
                break;
            }
            // Merge neighbouring runs pairwise by x (stable in position).
            let next_run = run * 2;
            let mut next = vec![(0u32, 0u32); n];
            let src = &pairs;
            let merge_one = |(start, out): (usize, &mut [(u32, u32)])| {
                let mid = (start + run).min(n);
                let end = (start + next_run).min(n);
                let (a, b) = (&src[start..mid], &src[mid..end]);
                let (mut i, mut j) = (0, 0);
                for slot in out.iter_mut() {
                    if j >= b.len() || (i < a.len() && a[i].0 <= b[j].0) {
                        *slot = a[i];
                        i += 1;
                    } else {
                        *slot = b[j];
                        j += 1;
                    }
                }
            };
            if parallel && n >= 16384 {
                next.par_chunks_mut(next_run)
                    .enumerate()
                    .for_each(|(r, out)| merge_one((r * next_run, out)));
            } else {
                for (r, out) in next.chunks_mut(next_run).enumerate() {
                    merge_one((r * next_run, out));
                }
            }
            pairs = next;
            run = next_run;
        }
        debug_assert_eq!(ytrees.len(), height);
        RangeTree3 { xs: xs_arena, ytrees, n }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Counts rows at positions `[a, b)` with `x < c` and `y < d`.
    pub fn count(&self, a: usize, b: usize, c: u32, d: u32) -> usize {
        let b = b.min(self.n);
        if a >= b {
            return 0;
        }
        let mut total = 0usize;
        let mut pos = a;
        while pos < b {
            let mut lvl = 0usize;
            while lvl + 1 < self.ytrees.len()
                && pos.is_multiple_of(1 << (lvl + 1))
                && pos + (1 << (lvl + 1)) <= b
            {
                lvl += 1;
            }
            let len = 1 << lvl;
            // Second dimension: prefix of the run with x < c.
            let level_xs = &self.xs[lvl * self.n..(lvl + 1) * self.n];
            let p = level_xs[pos..pos + len].partition_point(|&x| x < c);
            // Third dimension: inner tree over the same prefix.
            total += self.ytrees[lvl].count_below(pos, pos + p, d);
            pos += len;
        }
        total
    }

    /// Approximate memory footprint in bytes (for the space-complexity
    /// discussion in Table 1 / EXPERIMENTS.md).
    pub fn bytes(&self) -> usize {
        self.xs.len() * 4 + self.ytrees.iter().map(|t| t.stats().bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute(xs: &[u32], ys: &[u32], a: usize, b: usize, c: u32, d: u32) -> usize {
        (a..b.min(xs.len())).filter(|&i| xs[i] < c && ys[i] < d).count()
    }

    #[test]
    fn empty_and_singleton() {
        let t = RangeTree3::build(&[], &[], false);
        assert_eq!(t.count(0, 0, 5, 5), 0);
        assert!(t.is_empty());
        let t = RangeTree3::build(&[3], &[7], false);
        assert_eq!(t.len(), 1);
        assert_eq!(t.count(0, 1, 4, 8), 1);
        assert_eq!(t.count(0, 1, 3, 8), 0);
        assert_eq!(t.count(0, 1, 4, 7), 0);
    }

    #[test]
    fn random_counts_match_brute() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..15 {
            let n: u32 = rng.gen_range(0..200);
            let xs: Vec<u32> = (0..n).map(|_| rng.gen_range(0..30)).collect();
            let ys: Vec<u32> = (0..n).map(|_| rng.gen_range(0..30)).collect();
            let t = RangeTree3::build(&xs, &ys, false);
            for _ in 0..60 {
                let a = rng.gen_range(0..=n as usize);
                let b = rng.gen_range(a..=n as usize);
                let c = rng.gen_range(0..35);
                let d = rng.gen_range(0..35);
                assert_eq!(t.count(a, b, c, d), brute(&xs, &ys, a, b, c, d));
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000u32;
        let xs: Vec<u32> = (0..n).map(|_| rng.gen_range(0..100)).collect();
        let ys: Vec<u32> = (0..n).map(|_| rng.gen_range(0..100)).collect();
        let tp = RangeTree3::build(&xs, &ys, true);
        let ts = RangeTree3::build(&xs, &ys, false);
        for _ in 0..50 {
            let a = rng.gen_range(0..n as usize);
            let b = rng.gen_range(a..=n as usize);
            let (c, d) = (rng.gen_range(0..110), rng.gen_range(0..110));
            assert_eq!(tp.count(a, b, c, d), ts.count(a, b, c, d));
        }
    }

    #[test]
    fn bytes_reports_growth() {
        let xs: Vec<u32> = (0..1024).collect();
        let ys: Vec<u32> = (0..1024).rev().collect();
        let t = RangeTree3::build(&xs, &ys, false);
        assert!(t.bytes() > 1024 * 4 * 10, "O(n log^2 n) structure should dwarf input");
    }
}
