//! Append-sequence differential mode: the delta API vs. from-scratch.
//!
//! Splits a generated case's table into a base plus a few append batches
//! (split points derived from the case seed, so every run is replayable),
//! feeds them through [`IncrementalEngine`], and
//! demands the refreshed outputs be **bit-identical** to executing the query
//! from scratch on the full table — under every engine configuration. The
//! incremental engine promises exact equivalence whichever path (splice or
//! recompute) each batch takes; unlike the naive-vs-engine comparison there
//! is no float tolerance here.
//!
//! Error agreement follows the differential check's rule: both sides
//! erroring is agreement (the engine may surface the error at whichever
//! batch first contains the offending data), one side erroring alone is a
//! divergence. `changed_outputs` must always contain every row of the batch
//! that introduced it.

use crate::diff::{run_protected, values_identical, Divergence};
use holistic_window::prelude::*;

/// How a case's table is carved into base + batches.
#[derive(Debug, Clone)]
pub struct AppendPlan {
    /// Rows `[0, base_n)` form the engine's initial table.
    pub base_n: usize,
    /// Exclusive end of each batch; ascending, last = total rows.
    pub cuts: Vec<usize>,
}

/// Derives a deterministic append plan from the case seed: a base of
/// roughly half the rows, then 1–3 batches (possibly empty at the tail —
/// empty appends must be no-ops, so they are worth generating).
pub fn append_plan(seed: u64, n: usize) -> AppendPlan {
    let mut s = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        s ^= s >> 30;
        s = s.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s ^= s >> 27;
        s = s.wrapping_mul(0x94D0_49BB_1331_11EB);
        s ^= s >> 31;
        s
    };
    let base_n = if n == 0 { 0 } else { (next() as usize) % (n + 1) };
    let k = 1 + (next() as usize) % 3;
    let mut cuts: Vec<usize> = (0..k - 1)
        .map(|_| if n == base_n { n } else { base_n + (next() as usize) % (n - base_n + 1) })
        .collect();
    cuts.push(n);
    cuts.sort_unstable();
    AppendPlan { base_n, cuts }
}

/// Runs one case through the append-sequence check. `Ok(())` means every
/// configuration agreed bit-for-bit with its own from-scratch execution.
pub fn check_append_case(table: &Table, query: &WindowQuery, seed: u64) -> Result<(), Divergence> {
    let n = table.num_rows();
    let plan = append_plan(seed, n);
    let base = table.slice_rows(0, plan.base_n);
    let mut batches: Vec<(usize, Table)> = Vec::new(); // (first row id, rows)
    let mut at = plan.base_n;
    for &cut in &plan.cuts {
        batches.push((at, table.slice_rows(at, cut)));
        at = cut;
    }

    for opts in ExecOptions::all_configs() {
        let label = format!("append/{}", opts.label());
        let full_res = run_protected(&label, || query.execute_with(table, opts))?;
        let engine_res = run_protected(&label, || {
            let mut engine = query.begin_incremental(&base, opts)?;
            for (first, batch) in &batches {
                let res = engine.append(batch)?;
                for row in *first..*first + batch.num_rows() {
                    assert!(
                        res.changed_outputs.contains(&row),
                        "changed_outputs must contain appended row {row}"
                    );
                }
            }
            engine.output_table()
        })?;
        match (&full_res, engine_res) {
            (Err(_), Err(_)) => {}
            (Err(e), Ok(_)) => {
                return Err(Divergence {
                    config: label,
                    message: format!("delta API succeeded where from-scratch errors ({e})"),
                })
            }
            (Ok(_), Err(e)) => {
                return Err(Divergence {
                    config: label,
                    message: format!("delta API error where from-scratch succeeds: {e}"),
                })
            }
            (Ok(expect), Ok(got)) => {
                for call in &query.calls {
                    let name = &call.output_name;
                    let (ce, cg) = match (expect.column(name), got.column(name)) {
                        (Ok(a), Ok(b)) => (a, b),
                        _ => {
                            return Err(Divergence {
                                config: label,
                                message: format!("output column {name} missing"),
                            })
                        }
                    };
                    for row in 0..n {
                        let (e, g) = (ce.get(row), cg.get(row));
                        if !values_identical(&e, &g) {
                            return Err(Divergence {
                                config: label.clone(),
                                message: format!(
                                    "column {name} row {row}: delta API has {g}, \
                                     from-scratch has {e} (base {} + {} batches)",
                                    plan.base_n,
                                    batches.len(),
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(())
}
