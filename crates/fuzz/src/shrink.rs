//! Delta-debugging minimization of failing cases.
//!
//! Shrinking runs three passes to a bounded fixpoint, each preserving the
//! failure predicate: (1) table rows via ddmin-style chunk removal, (2)
//! whole calls, (3) individual spec features — exclusion, partitioning,
//! ORDER BY keys, frame mode and bounds, FILTER, IGNORE NULLS, DISTINCT and
//! inner orders — each simplified one at a time. A candidate that turns the
//! query invalid is harmless: both engine and naive then error, the
//! differential predicate stops failing, and the candidate is rejected.

use crate::gen::frame_is_trivial;
use holistic_window::frame::FrameMode;
use holistic_window::prelude::*;

/// The failure predicate: true while the (table, query) pair still exhibits
/// the failure being minimized.
pub type FailPred<'a> = dyn Fn(&Table, &WindowQuery) -> bool + 'a;

/// Copies `keep`'s rows (in order) into a fresh table, preserving column
/// types even when every kept value is NULL.
pub fn subset_rows(table: &Table, keep: &[usize]) -> Table {
    let mut cols: Vec<(String, Column)> = Vec::new();
    for (name, c) in table.iter() {
        let mut nc = Column::new_empty(c.data_type());
        for &r in keep {
            nc.push(c.get(r)).expect("subset keeps the column type");
        }
        cols.push((name.to_string(), nc));
    }
    Table::new(cols).expect("subset columns share one length")
}

/// Minimizes a failing case. `fails` must be true for the input pair; the
/// returned pair still satisfies it. The total number of predicate
/// evaluations is bounded, so shrinking always terminates quickly even when
/// the predicate is expensive.
pub fn shrink(table: &Table, query: &WindowQuery, fails: &FailPred) -> (Table, WindowQuery) {
    let all: Vec<usize> = (0..table.num_rows()).collect();
    let mut table = subset_rows(table, &all);
    let mut query = query.clone();
    let mut budget = 800usize;
    loop {
        let mut progress = false;
        progress |= shrink_rows(&mut table, &query, fails, &mut budget);
        progress |= shrink_calls(&table, &mut query, fails, &mut budget);
        progress |= shrink_features(&table, &mut query, fails, &mut budget);
        if !progress || budget == 0 {
            return (table, query);
        }
    }
}

fn shrink_rows(
    table: &mut Table,
    query: &WindowQuery,
    fails: &FailPred,
    budget: &mut usize,
) -> bool {
    let mut any = false;
    let mut chunk = (table.num_rows() / 2).max(1);
    loop {
        let mut removed = false;
        let mut start = 0;
        while start < table.num_rows() && *budget > 0 {
            let end = (start + chunk).min(table.num_rows());
            let keep: Vec<usize> =
                (0..table.num_rows()).filter(|i| !(start..end).contains(i)).collect();
            let candidate = subset_rows(table, &keep);
            *budget -= 1;
            if fails(&candidate, query) {
                *table = candidate;
                any = true;
                removed = true;
                // Same window position now holds the following rows.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            // At granularity one, loop until a full pass removes nothing.
            if !removed || *budget == 0 {
                return any;
            }
        } else {
            chunk /= 2;
        }
    }
}

fn shrink_calls(
    table: &Table,
    query: &mut WindowQuery,
    fails: &FailPred,
    budget: &mut usize,
) -> bool {
    let mut any = false;
    let mut i = 0;
    while i < query.calls.len() && *budget > 0 {
        let mut candidate = query.clone();
        candidate.calls.remove(i);
        *budget -= 1;
        if fails(table, &candidate) {
            *query = candidate;
            any = true;
        } else {
            i += 1;
        }
    }
    any
}

/// Single-feature simplification candidates, cheapest-to-explain first.
fn feature_candidates(q: &WindowQuery) -> Vec<WindowQuery> {
    let mut out = Vec::new();
    let mut with = |f: &dyn Fn(&mut WindowQuery)| {
        let mut c = q.clone();
        f(&mut c);
        out.push(c);
    };

    if q.spec.frame.exclusion != FrameExclusion::NoOthers {
        with(&|c| c.spec.frame.exclusion = FrameExclusion::NoOthers);
    }
    if !q.spec.partition_by.is_empty() {
        with(&|c| c.spec.partition_by.clear());
    }
    if q.spec.order_by.len() > 1 {
        with(&|c| c.spec.order_by.truncate(1));
    } else if q.spec.order_by.len() == 1 {
        with(&|c| c.spec.order_by.clear());
    }
    if !frame_is_trivial(&q.spec.frame) {
        with(&|c| {
            let e = c.spec.frame.exclusion;
            c.spec.frame = FrameSpec::whole_partition().exclude(e);
        });
    }
    if q.spec.frame.mode != FrameMode::Rows {
        with(&|c| c.spec.frame.mode = FrameMode::Rows);
    }
    if !matches!(q.spec.frame.start, FrameBound::UnboundedPreceding) {
        with(&|c| c.spec.frame.start = FrameBound::UnboundedPreceding);
        with(&|c| c.spec.frame.start = FrameBound::Preceding(lit(1i64)));
    }
    if !matches!(q.spec.frame.end, FrameBound::UnboundedFollowing) {
        with(&|c| c.spec.frame.end = FrameBound::UnboundedFollowing);
        with(&|c| c.spec.frame.end = FrameBound::Following(lit(1i64)));
    }
    for i in 0..q.calls.len() {
        if q.calls[i].filter.is_some() {
            with(&|c| c.calls[i].filter = None);
        }
        if q.calls[i].ignore_nulls {
            with(&|c| c.calls[i].ignore_nulls = false);
        }
        if q.calls[i].distinct {
            with(&|c| c.calls[i].distinct = false);
        }
        if q.calls[i].inner_order.len() > 1 {
            with(&|c| c.calls[i].inner_order.truncate(1));
        } else if q.calls[i].inner_order.len() == 1 {
            with(&|c| c.calls[i].inner_order.clear());
        }
    }
    out
}

fn shrink_features(
    table: &Table,
    query: &mut WindowQuery,
    fails: &FailPred,
    budget: &mut usize,
) -> bool {
    let mut any = false;
    loop {
        let mut accepted = false;
        for candidate in feature_candidates(query) {
            if *budget == 0 {
                return any;
            }
            *budget -= 1;
            if fails(table, &candidate) {
                *query = candidate;
                accepted = true;
                any = true;
                break;
            }
        }
        if !accepted {
            return any;
        }
    }
}
