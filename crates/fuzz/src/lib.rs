//! Differential fuzzing for the window engine.
//!
//! The merge sort tree engine has a large behavioral surface — six evaluator
//! families × three frame modes × constant and per-row bounds × four
//! exclusions × FILTER × IGNORE NULLS × independent inner ORDER BY — times
//! eight engine configurations (serial/parallel × cursor/stateless probes ×
//! shared/private artifact cache). This crate closes that surface with four
//! pieces:
//!
//! * [`gen`] — a seeded, weighted generator over the full spec space. Every
//!   case is identified by a single `u64` seed; the same seed always
//!   regenerates the same table and query, so every failure is replayable.
//! * [`diff`] — the differential check: the engine must agree with the naive
//!   per-row baseline (float-tolerant, the two sides sum in different
//!   orders); all eight adaptive configurations plus forced-MST must agree
//!   bit-identically with each other; and every forced alternate strategy
//!   (naive, incremental, ostree, segtree) must agree float-tolerantly with
//!   the baseline. Panics are caught and reported as failures, never
//!   allowed to take the harness down.
//! * [`mod@shrink`] — delta-debugging minimization of a failing case: first the
//!   table rows, then the calls, then individual spec features, so the
//!   reported repro is as small as the failure allows.
//! * [`mod@panic_sweep`] — the negative half: generated-*invalid* specs
//!   (negative/NULL/non-integer offsets, bad key types, malformed call
//!   shapes) must yield `Error`, never panic, on every configuration.
//! * [`mod@sql_roundtrip`] — the frontend loop: every generated spec printed
//!   as SQL must re-parse to a structurally identical spec and execute
//!   bit-identically through the `holistic-sql` session path.
//!
//! The `fuzz` binary drives all of this from the command line; `ci.sh` runs
//! a deterministic smoke portion of it on every commit, and `tests/oracle.rs`
//! at the workspace root draws its scenarios from the same generator so the
//! oracle and the fuzzer share one definition of the spec space.

pub mod append;
pub mod diff;
pub mod gen;
pub mod panic_sweep;
pub mod shrink;
pub mod sql_roundtrip;

pub use append::{append_plan, check_append_case, AppendPlan};
pub use diff::{check_budget_case, check_case, Divergence};
pub use gen::{case_seed, generate, FuzzCase, GenConfig};
pub use panic_sweep::{panic_sweep, SweepReport};
pub use shrink::shrink;
pub use sql_roundtrip::check_sql_roundtrip;

/// Runs `f` with the global panic hook silenced, restoring it afterwards.
///
/// The differential check intentionally provokes panics (that is the point:
/// it catches them and turns them into failures); without this the default
/// hook would spray every caught panic's message and backtrace to stderr.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Renders a table row-by-row for failure reports.
pub fn dump_table(table: &holistic_window::Table) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let names: Vec<&str> = table.iter().map(|(n, _)| n).collect();
    let _ = writeln!(s, "  {} rows, columns: {}", table.num_rows(), names.join(", "));
    for i in 0..table.num_rows() {
        let row: Vec<String> = table.iter().map(|(n, c)| format!("{n}={}", c.get(i))).collect();
        let _ = writeln!(s, "  [{i}] {}", row.join(" "));
    }
    s
}
