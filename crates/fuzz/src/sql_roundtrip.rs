//! SQL round-trip checking: `parse(print(query))` must reproduce the query.
//!
//! For every generated case the engine spec is printed as SQL
//! ([`holistic_sql::to_sql`]), re-parsed and re-planned
//! ([`holistic_sql::parse_window_query`]), and the two specs must match
//! **structurally** (by `Debug` rendering — both sides are plain data).
//! Then both the original spec (builder path) and the SQL text (full
//! [`holistic_sql::SqlSession`] path: parse → plan → session assembly) are
//! executed and must agree **bit-identically** — the frontend is a pure
//! lowering, so any difference at all, down to the sign of a zero, is a bug
//! in the parser, the planner, the printer, or the session glue.
//!
//! Error cases count as agreement only when *both* sides reject (the
//! generator rarely produces specs the engine rejects, but when it does the
//! SQL path must reject them too — at plan time or engine time).

use crate::diff::{compare_tables, run_protected, values_identical, Divergence};
use holistic_sql::SqlSession;
use holistic_window::{ExecOptions, Table, WindowQuery};

/// The table name the round-trip registers and prints.
const TABLE: &str = "t";

/// Checks one case through the print → parse → plan → execute loop.
pub fn check_sql_roundtrip(table: &Table, query: &WindowQuery) -> Result<(), Divergence> {
    let sql = holistic_sql::to_sql(query, TABLE);
    let fail = |message: String| Divergence { config: "sql-roundtrip".to_string(), message };

    // 1. The SQL text must parse and plan back into the same spec.
    let (reparsed, table_name) = match holistic_sql::parse_window_query(&sql) {
        Ok(r) => r,
        Err(e) => return Err(fail(format!("printed SQL does not parse:\n  {sql}\n  {e}"))),
    };
    if table_name != TABLE {
        return Err(fail(format!("FROM clause resolved to `{table_name}`:\n  {sql}")));
    }
    let (orig_dbg, reparsed_dbg) = (format!("{query:?}"), format!("{reparsed:?}"));
    if orig_dbg != reparsed_dbg {
        return Err(fail(format!(
            "round-trip changed the spec:\n  sql:      {sql}\n  original: {orig_dbg}\n  \
             reparsed: {reparsed_dbg}"
        )));
    }

    // 2. Builder-path and SQL-path execution must agree bit-identically.
    let opts = ExecOptions::serial();
    let direct = run_protected("sql-roundtrip-direct", || query.execute_with(table, opts))?;
    let via_sql = run_protected("sql-roundtrip-session", || {
        let mut session = SqlSession::with_options(opts);
        session.register(TABLE, table.clone());
        // Session errors are not engine errors; box them into one shape.
        session.query(&sql).map_err(|e| match e {
            holistic_sql::SqlError::Engine(e) => e,
            other => holistic_window::Error::InvalidArgument(other.to_string()),
        })
    })?;
    match (direct, via_sql) {
        (Err(_), Err(_)) => Ok(()),
        (Err(e), Ok(_)) => {
            Err(fail(format!("SQL path succeeded where the builder path errors ({e}):\n  {sql}")))
        }
        (Ok(_), Err(e)) => {
            Err(fail(format!("SQL path failed where the builder path succeeds:\n  {sql}\n  {e}")))
        }
        (Ok(expect), Ok(got)) => {
            compare_tables("sql-roundtrip", "builder path", query, &expect, &got, values_identical)
                .map_err(|d| fail(format!("{d}\n  sql: {sql}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{case_seed, generate, GenConfig};

    #[test]
    fn round_trips_a_seeded_sample() {
        let cfg = GenConfig::default();
        for i in 0..40 {
            let case = generate(case_seed(0xD1A1EC7, i), &cfg);
            check_sql_roundtrip(&case.table, &case.query).unwrap();
        }
    }
}
