//! The differential check: naive baseline vs. every engine configuration.
//!
//! Two comparison regimes, deliberately different:
//!
//! * **engine vs. naive** — float-tolerant ([`values_close`]). The two sides
//!   derive every aggregate independently and sum floats in different orders
//!   (segment-tree pairwise vs. linear scan), so exact equality is not a
//!   sound expectation.
//! * **engine config vs. engine config** — bit-identical
//!   ([`values_identical`]). Serial/parallel, cursor/stateless,
//!   shared/private caching and adaptive-vs-forced-MST strategy choice are
//!   pure execution strategies; any difference at all, down to the sign of
//!   a zero, is a bug. Forced *alternate* strategies (naive, incremental,
//!   ostree, segtree) compute with genuinely different arithmetic and are
//!   held to the float-tolerant regime against the baseline instead.
//!
//! Errors count as agreement only when *both* sides error (messages may
//! legitimately differ); a panic anywhere is always a failure — the engine's
//! contract is `Result`, never unwinding.

use holistic_baselines::naive;
use holistic_window::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One observed disagreement (or panic), attributed to the configuration
/// that produced it.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which execution produced the bad result (`naive` or an
    /// [`ExecOptions::label`]).
    pub config: String,
    /// Human-readable description of the disagreement.
    pub message: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.config, self.message)
    }
}

/// Float-tolerant value comparison (engine vs. naive).
pub fn values_close(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => {
            (x.is_nan() && y.is_nan()) || (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs()))
        }
        (Value::Float(x), Value::Int(y)) | (Value::Int(y), Value::Float(x)) => {
            (*x - *y as f64).abs() <= 1e-9
        }
        _ => a == b,
    }
}

/// Bit-identical value comparison (engine config vs. engine config).
pub fn values_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `f`, converting a panic into a [`Divergence`] attributed to `config`.
/// The vendored rayon re-panics worker panics on the calling thread, so this
/// boundary catches parallel-mode panics too.
pub(crate) fn run_protected<T>(
    config: &str,
    f: impl FnOnce() -> holistic_window::Result<T>,
) -> Result<holistic_window::Result<T>, Divergence> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| Divergence {
        config: config.to_string(),
        message: format!("panicked: {}", panic_message(p.as_ref())),
    })
}

pub(crate) fn compare_tables(
    config: &str,
    against: &str,
    query: &WindowQuery,
    expect: &Table,
    got: &Table,
    eq: fn(&Value, &Value) -> bool,
) -> Result<(), Divergence> {
    for call in &query.calls {
        let name = &call.output_name;
        let (ce, cg) = match (expect.column(name), got.column(name)) {
            (Ok(a), Ok(b)) => (a, b),
            _ => {
                return Err(Divergence {
                    config: config.to_string(),
                    message: format!("output column {name} missing"),
                })
            }
        };
        for row in 0..expect.num_rows() {
            let (e, g) = (ce.get(row), cg.get(row));
            if !eq(&e, &g) {
                return Err(Divergence {
                    config: config.to_string(),
                    message: format!(
                        "column {name} row {row}: got {g}, {against} has {e} \
                         ({} {})",
                        call.kind.name(),
                        if call.inner_order.is_empty() { "" } else { "with inner order" },
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Checks one case under a memory budget: budgeted configurations must be
/// **bit-identical** to an unbudgeted serial reference whenever they
/// complete, and may otherwise fail only with the typed
/// [`holistic_window::Error::BudgetExceeded`] — any other fresh error, and
/// any panic, is a divergence. Spilling and out-of-core builds are pure
/// execution strategies, so the comparison regime is the strict one.
pub fn check_budget_case(
    table: &Table,
    query: &WindowQuery,
    budget: u64,
) -> Result<(), Divergence> {
    let reference =
        run_protected("serial-reference", || query.execute_with(table, ExecOptions::serial()))?;
    let configs = [
        ExecOptions::serial().memory_budget(budget),
        ExecOptions::default().memory_budget(budget),
        ExecOptions::serial().force_strategy(Strategy::Mst).memory_budget(budget),
    ];
    for opts in configs {
        let label = opts.label();
        let res = run_protected(&label, || query.execute_with(table, opts))?;
        match (&reference, res) {
            // Running out of budget is always a legitimate outcome — but
            // only through the typed error, never a panic (caught above).
            (_, Err(holistic_window::Error::BudgetExceeded { .. })) => {}
            (Err(_), Err(_)) => {}
            (Err(e), Ok(_)) => {
                return Err(Divergence {
                    config: label,
                    message: format!("budgeted run succeeded where reference errors ({e})"),
                })
            }
            (Ok(_), Err(e)) => {
                return Err(Divergence {
                    config: label,
                    message: format!(
                        "budgeted run failed with a non-budget error where reference \
                         succeeds: {e}"
                    ),
                })
            }
            (Ok(expect), Ok(got)) => {
                compare_tables(&label, "serial-reference", query, expect, &got, values_identical)?
            }
        }
    }
    Ok(())
}

/// Checks one case: the naive baseline, all eight adaptive engine
/// configurations, forced-MST, and every forced alternate strategy must
/// agree (per the module-level comparison regimes). `Ok(())` means full
/// agreement; `Err` carries the first divergence found.
///
/// Comparison groups:
///
/// * the eight adaptive configs, forced-MST (serial and parallel), and the
///   interpreted-expression / unbatched-probe escape hatches form the
///   **bit-identical** group — the adaptive chooser is a pure function
///   of the resolved frames, so per-partition strategy choices cannot vary
///   across configs, and the direct/alternate evaluators replicate the MST
///   artifact recipes exactly;
/// * each remaining forced strategy (naive, incremental, ostree, segtree)
///   is compared **float-tolerantly** against the naive baseline — these
///   paths derive aggregates with genuinely different arithmetic (e.g. a
///   sliding order-statistic tree vs. a per-row scan) — and its `Err`-ness
///   must match the baseline's.
pub fn check_case(table: &Table, query: &WindowQuery) -> Result<(), Divergence> {
    let naive_res = run_protected("naive", || naive::execute(query, table))?;
    let mut reference: Option<(String, Table)> = None;
    let mut exact: Vec<ExecOptions> = ExecOptions::all_configs().to_vec();
    exact.push(ExecOptions::serial().force_strategy(Strategy::Mst));
    exact.push(ExecOptions::default().force_strategy(Strategy::Mst));
    // Escape hatches: the interpreter and the scalar (cursor-seeded) probe
    // path must stay bit-identical to the compiled VM and the block kernels.
    exact.push(ExecOptions::serial().interpreted_exprs());
    exact.push(ExecOptions::default().interpreted_exprs());
    exact.push(ExecOptions::serial().unbatched_probes());
    exact.push(ExecOptions::default().unbatched_probes());
    exact.push(ExecOptions::serial().interpreted_exprs().unbatched_probes());
    exact.push(ExecOptions::serial().force_strategy(Strategy::Mst).unbatched_probes());
    for opts in exact {
        let label = opts.label();
        let engine_res = run_protected(&label, || query.execute_with(table, opts))?;
        match (&naive_res, engine_res) {
            // Both sides reject the case: agreement (invalid specs are the
            // panic sweep's business, not the differential check's).
            (Err(_), Err(_)) => {}
            (Err(e), Ok(_)) => {
                return Err(Divergence {
                    config: label,
                    message: format!("engine succeeded where naive errors ({e})"),
                })
            }
            (Ok(_), Err(e)) => {
                return Err(Divergence {
                    config: label,
                    message: format!("engine error where naive succeeds: {e}"),
                })
            }
            (Ok(expect), Ok(got)) => {
                compare_tables(&label, "naive", query, expect, &got, values_close)?;
                match &reference {
                    Some((ref_label, ref_table)) => {
                        compare_tables(&label, ref_label, query, ref_table, &got, values_identical)?
                    }
                    None => reference = Some((label, got)),
                }
            }
        }
    }
    // Forced alternates: strategies a call can't support fall back to the
    // MST per call, so every case exercises each forced path end to end.
    for s in [Strategy::Naive, Strategy::Incremental, Strategy::OsTree, Strategy::SegTree] {
        let opts = ExecOptions::serial().force_strategy(s);
        let label = opts.label();
        let engine_res = run_protected(&label, || query.execute_with(table, opts))?;
        match (&naive_res, engine_res) {
            (Err(_), Err(_)) => {}
            (Err(e), Ok(_)) => {
                return Err(Divergence {
                    config: label,
                    message: format!("engine succeeded where naive errors ({e})"),
                })
            }
            (Ok(_), Err(e)) => {
                return Err(Divergence {
                    config: label,
                    message: format!("engine error where naive succeeds: {e}"),
                })
            }
            (Ok(expect), Ok(got)) => {
                compare_tables(&label, "naive", query, expect, &got, values_close)?
            }
        }
    }
    Ok(())
}
