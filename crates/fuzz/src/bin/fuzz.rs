//! The differential fuzzing driver.
//!
//! ```text
//! fuzz [--cases N] [--seed S] [--max-n N] [--max-calls N]
//!      [--time-budget-secs T] [--replay CASE_SEED] [--panic-sweep] [--append]
//!      [--budget BYTES] [--sql-roundtrip]
//! ```
//!
//! Default mode generates `--cases` cases from `--seed` and runs each
//! through the differential check (naive baseline + all eight engine
//! configurations). On the first divergence it shrinks the case, prints a
//! replayable report and exits non-zero. `--replay` re-runs exactly one case
//! by its per-case seed (printed in every failure report). `--panic-sweep`
//! runs the invalid-spec corpus instead: everything must return `Error`,
//! nothing may panic. `--append` runs the append-sequence mode instead: each
//! case's table is carved into a base plus seeded batches, fed through the
//! incremental delta API, and compared bit-identically against from-scratch
//! execution under every configuration. `--budget BYTES` runs the
//! budget-constrained mode instead: every case runs under a memory budget
//! and must be bit-identical to the unbudgeted serial reference or fail
//! with the typed `BudgetExceeded` (never panic). `--sql-roundtrip` runs the
//! frontend loop instead: each case's query is printed as SQL, re-parsed and
//! re-planned (must reproduce the spec structurally), and executed through
//! the `holistic-sql` session path (must be bit-identical to the builder
//! path).

use holistic_fuzz::gen::{case_seed, generate, GenConfig};
use holistic_fuzz::{
    check_append_case, check_budget_case, check_case, check_sql_roundtrip, dump_table, panic_sweep,
    shrink, with_quiet_panics,
};
use std::time::Instant;

struct Args {
    cases: u64,
    seed: u64,
    max_n: usize,
    max_calls: usize,
    time_budget_secs: Option<u64>,
    replay: Option<u64>,
    panic_sweep: bool,
    append: bool,
    budget: Option<u64>,
    sql_roundtrip: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            cases: 500,
            seed: 0xC0FFEE,
            max_n: 48,
            max_calls: 5,
            time_budget_secs: None,
            replay: None,
            panic_sweep: false,
            append: false,
            budget: None,
            sql_roundtrip: false,
        }
    }
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let r = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| format!("not a number: {s}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--cases" => args.cases = parse_u64(&value("--cases")?)?,
            "--seed" => args.seed = parse_u64(&value("--seed")?)?,
            "--max-n" => args.max_n = parse_u64(&value("--max-n")?)? as usize,
            "--max-calls" => args.max_calls = parse_u64(&value("--max-calls")?)?.max(1) as usize,
            "--time-budget-secs" => {
                args.time_budget_secs = Some(parse_u64(&value("--time-budget-secs")?)?)
            }
            "--replay" => args.replay = Some(parse_u64(&value("--replay")?)?),
            "--panic-sweep" => args.panic_sweep = true,
            "--append" => args.append = true,
            "--budget" => args.budget = Some(parse_u64(&value("--budget")?)?),
            "--sql-roundtrip" => args.sql_roundtrip = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: fuzz [--cases N] [--seed S] [--max-n N] [--max-calls N]\n\
         \x20           [--time-budget-secs T] [--replay CASE_SEED] [--panic-sweep] [--append]\n\
         \x20           [--budget BYTES] [--sql-roundtrip]"
    );
}

fn replay_command(case_seed: u64, args: &Args) -> String {
    format!(
        "cargo run --release -p holistic-fuzz --bin fuzz -- --replay {case_seed:#x} \
         --max-n {} --max-calls {}{}{}{}",
        args.max_n,
        args.max_calls,
        if args.append { " --append" } else { "" },
        match args.budget {
            Some(b) => format!(" --budget {b}"),
            None => String::new(),
        },
        if args.sql_roundtrip { " --sql-roundtrip" } else { "" }
    )
}

fn report_failure(
    index: Option<u64>,
    cs: u64,
    case: &holistic_fuzz::FuzzCase,
    divergence: &holistic_fuzz::Divergence,
    args: &Args,
) {
    match index {
        Some(i) => println!("FUZZ FAILURE at case #{i} (case seed {cs:#x})"),
        None => println!("FUZZ FAILURE (case seed {cs:#x})"),
    }
    println!("  divergence: {divergence}");
    println!("  replay:     {}", replay_command(cs, args));
    let check = |t: &holistic_window::Table, q: &holistic_window::WindowQuery| {
        if args.sql_roundtrip {
            check_sql_roundtrip(t, q)
        } else if let Some(b) = args.budget {
            check_budget_case(t, q, b)
        } else if args.append {
            check_append_case(t, q, cs)
        } else {
            check_case(t, q)
        }
    };
    let fails = |t: &holistic_window::Table, q: &holistic_window::WindowQuery| check(t, q).is_err();
    let (table, query) = shrink(&case.table, &case.query, &fails);
    let shrunk_div = check(&table, &query).err();
    println!(
        "  shrunk to {} rows, {} calls{}:",
        table.num_rows(),
        query.calls.len(),
        match &shrunk_div {
            Some(d) => format!(" (divergence: {d})"),
            None => String::new(),
        }
    );
    print!("{}", dump_table(&table));
    println!("  query: {query:#?}");
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            std::process::exit(2);
        }
    };

    if args.panic_sweep {
        let start = Instant::now();
        let report = with_quiet_panics(|| panic_sweep(args.seed, args.cases as usize, args.max_n));
        for f in &report.failures {
            println!("PANIC SWEEP FAILURE: {f}");
        }
        println!(
            "panic sweep: {} cases, {} failures ({:.1}s)",
            report.cases,
            report.failures.len(),
            start.elapsed().as_secs_f64()
        );
        std::process::exit(if report.failures.is_empty() { 0 } else { 1 });
    }

    let cfg = GenConfig { max_n: args.max_n, max_calls: args.max_calls };

    let check = |t: &holistic_window::Table, q: &holistic_window::WindowQuery, cs: u64| {
        if args.sql_roundtrip {
            check_sql_roundtrip(t, q)
        } else if let Some(b) = args.budget {
            check_budget_case(t, q, b)
        } else if args.append {
            check_append_case(t, q, cs)
        } else {
            check_case(t, q)
        }
    };

    if let Some(cs) = args.replay {
        let case = generate(cs, &cfg);
        println!("replaying case seed {cs:#x}:");
        print!("{}", dump_table(&case.table));
        println!("  query: {:#?}", case.query);
        match with_quiet_panics(|| check(&case.table, &case.query, cs)) {
            Ok(()) => println!("replay OK: no divergence"),
            Err(d) => {
                report_failure(None, cs, &case, &d, &args);
                std::process::exit(1);
            }
        }
        return;
    }

    let start = Instant::now();
    let mut ran = 0u64;
    let failed = with_quiet_panics(|| {
        for i in 0..args.cases {
            if let Some(budget) = args.time_budget_secs {
                if start.elapsed().as_secs() >= budget {
                    println!("time budget of {budget}s reached after {ran} cases — stopping early");
                    break;
                }
            }
            let cs = case_seed(args.seed, i);
            let case = generate(cs, &cfg);
            if let Err(d) = check(&case.table, &case.query, cs) {
                report_failure(Some(i), cs, &case, &d, &args);
                return true;
            }
            ran += 1;
            if ran.is_multiple_of(100) {
                println!("  {ran}/{} cases, {:.1}s", args.cases, start.elapsed().as_secs_f64());
            }
        }
        false
    });
    if failed {
        std::process::exit(1);
    }
    if args.sql_roundtrip {
        println!(
            "fuzz OK (sql-roundtrip mode): {ran} cases, seed {:#x}, max-n {}, \
             print→parse→plan structural + session-vs-builder bit-identical ({:.1}s)",
            args.seed,
            args.max_n,
            start.elapsed().as_secs_f64()
        );
    } else if let Some(b) = args.budget {
        println!(
            "fuzz OK (budget mode): {ran} cases, seed {:#x}, max-n {}, budget {b} B — \
             budgeted configs bit-identical or typed BudgetExceeded ({:.1}s)",
            args.seed,
            args.max_n,
            start.elapsed().as_secs_f64()
        );
    } else if args.append {
        println!(
            "fuzz OK (append mode): {ran} cases, seed {:#x}, max-n {}, delta API vs \
             from-scratch bit-identical over 8 configs ({:.1}s)",
            args.seed,
            args.max_n,
            start.elapsed().as_secs_f64()
        );
    } else {
        println!(
            "fuzz OK: {ran} cases, seed {:#x}, max-n {}, 16 exact configs + 4 forced strategies vs naive ({:.1}s)",
            args.seed,
            args.max_n,
            start.elapsed().as_secs_f64()
        );
    }
}
