//! Seeded, weighted generation over the engine's full specification space.
//!
//! One `u64` seed determines one [`FuzzCase`] — table *and* query — so a
//! failing case is replayed by its seed alone. The weights are tuned toward
//! the regions where window semantics actually bite: NULL-heavy and
//! tie-heavy tables, empty and degenerate frames, per-row expression bounds
//! (§2.2's stock-order example), huge offsets at the edge of the integer
//! range, and keys beyond 2^53 where f64 arithmetic silently collapses.

use holistic_window::frame::FrameMode;
use holistic_window::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size knobs for generated cases.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum table rows (inclusive; the row count is drawn from `0..=max_n`).
    pub max_n: usize,
    /// Maximum calls per query (at least one is always generated).
    pub max_calls: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { max_n: 48, max_calls: 5 }
    }
}

/// One generated case: a table and a window query, tied to the seed that
/// produced them.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The exact seed that regenerates this case.
    pub seed: u64,
    /// The input table.
    pub table: Table,
    /// The query under test.
    pub query: WindowQuery,
}

/// Derives the seed of case `index` in a run started from `base` (SplitMix64,
/// so neighboring indices produce unrelated streams).
pub fn case_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates the case identified by `seed`.
pub fn generate(seed: u64, cfg: &GenConfig) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(0..=cfg.max_n);
    let table = gen_table(&mut rng, n);
    let spec = gen_spec(&mut rng);
    let mut query = WindowQuery::over(spec);
    let num_calls = rng.gen_range(1..=cfg.max_calls.max(1));
    for i in 0..num_calls {
        let mut call = gen_call(&mut rng);
        call.output_name = format!("c{i}_{}", call.kind.name().replace(['(', ')', '*'], ""));
        query = query.call(call);
    }
    FuzzCase { seed, table, query }
}

/// A random table over the fixed column profile the spec generator targets:
/// `g` (strings, partition/tie column), `k` (nullable ints, the window order
/// key), `v` (nullable small ints), `f` (nullable floats), `d` (dates).
pub fn gen_table(rng: &mut StdRng, n: usize) -> Table {
    // Profiles: NULL-heavy and tie-heavy data is where peer groups, IGNORE
    // NULLS and exclusion semantics earn their keep; the huge-key profiles
    // put RANGE arithmetic beyond f64's 2^53 exact-integer range.
    let null_p = [0.0, 0.1, 0.45][rng.gen_range(0usize..3)];
    let key_profile = rng.gen_range(0u32..6);
    let tie_heavy = rng.gen_bool(0.4);
    let alphabet = rng.gen_range(1usize..=4);
    let groups = ["x", "y", "z", "w"];

    let g: Vec<&str> = (0..n).map(|_| groups[rng.gen_range(0..alphabet)]).collect();
    let k: Vec<Option<i64>> = (0..n)
        .map(|_| {
            if rng.gen_bool(null_p) {
                None
            } else {
                Some(match key_profile {
                    0 => rng.gen_range(0..4),
                    1 => rng.gen_range(0..50),
                    2 => rng.gen_range(-40..40),
                    3 => rng.gen_range(-1000..1000),
                    4 => i64::MAX - rng.gen_range(0..8i64),
                    _ => i64::MIN + rng.gen_range(0..8i64),
                })
            }
        })
        .collect();
    let v: Vec<Option<i64>> = (0..n)
        .map(|_| {
            if rng.gen_bool(null_p) {
                None
            } else if tie_heavy {
                Some(rng.gen_range(-3..4))
            } else {
                Some(rng.gen_range(-15..15))
            }
        })
        .collect();
    let f: Vec<Option<f64>> = (0..n)
        .map(|_| {
            if rng.gen_bool(null_p) {
                None
            } else if tie_heavy {
                // Half-integer grid: float ties are otherwise vanishingly rare.
                Some(rng.gen_range(-4i64..4) as f64 * 0.5)
            } else {
                Some(rng.gen_range(-8.0..8.0))
            }
        })
        .collect();
    let d: Vec<i32> = (0..n).map(|_| rng.gen_range(0..if tie_heavy { 4 } else { 400 })).collect();

    Table::new(vec![
        ("g", Column::strs(g)),
        ("k", Column::ints_opt(k)),
        ("v", Column::ints_opt(v)),
        ("f", Column::floats_opt(f)),
        ("d", Column::dates(d)),
    ])
    .expect("generated columns share one length")
}

/// A random frame bound. Weights cover the unbounded/current/constant cases,
/// float offsets, per-row expression bounds, and huge offsets that sit on the
/// overflow boundary.
pub fn gen_bound(rng: &mut StdRng, start: bool) -> FrameBound {
    let dir = |rng: &mut StdRng, e: Expr| {
        if rng.gen_bool(0.5) {
            FrameBound::Preceding(e)
        } else {
            FrameBound::Following(e)
        }
    };
    match rng.gen_range(0u32..100) {
        0..=17 => {
            if start {
                FrameBound::UnboundedPreceding
            } else {
                FrameBound::UnboundedFollowing
            }
        }
        18..=35 => FrameBound::CurrentRow,
        36..=60 => {
            let off = lit(rng.gen_range(0..30i64));
            dir(rng, off)
        }
        61..=70 => {
            let off = lit(rng.gen_range(0.0..25.0));
            dir(rng, off)
        }
        71..=90 => {
            // Per-row expression bound (non-monotonic frames, §6.5):
            // d − DATE '1970-01-01' turns the date into a day count.
            let days = col("d").sub(lit(Value::Date(0)));
            let e = days.mul(lit(7703i64)).rem(lit(rng.gen_range(3..25i64)));
            dir(rng, e)
        }
        _ => {
            // Huge offsets: the overflow-regression territory of ISSUE 4.
            let off = match rng.gen_range(0u32..3) {
                0 => lit(i64::MAX),
                1 => lit(1e300),
                _ => lit(i64::MAX - 1),
            };
            dir(rng, off)
        }
    }
}

/// A random frame: all three modes (RANGE only when the window ORDER BY
/// supports it) crossed with all four exclusions.
pub fn gen_frame(rng: &mut StdRng, range_ok: bool) -> FrameSpec {
    let start = gen_bound(rng, true);
    let end = gen_bound(rng, false);
    let mut spec = match rng.gen_range(0u32..10) {
        0..=3 => FrameSpec::rows(start, end),
        4..=6 if range_ok => FrameSpec::range(start, end),
        _ => FrameSpec::groups(start, end),
    };
    spec.exclusion = [
        FrameExclusion::NoOthers,
        FrameExclusion::CurrentRow,
        FrameExclusion::Group,
        FrameExclusion::Ties,
    ][rng.gen_range(0usize..4)];
    spec
}

/// A random OVER clause: partitioning (none / column / computed), window
/// ORDER BY (single numeric keys both directions, multi-key, string-leading,
/// or none at all), and a frame.
pub fn gen_spec(rng: &mut StdRng) -> WindowSpec {
    let partition_by = match rng.gen_range(0u32..5) {
        0 | 1 => vec![],
        2 | 3 => vec![col("g")],
        _ => vec![col("g"), col("d").sub(lit(Value::Date(0))).rem(lit(2i64))],
    };
    // RANGE with offsets needs a single numeric/date key; every other mode
    // works with any (or no) ORDER BY.
    let (order_by, range_ok) = match rng.gen_range(0u32..9) {
        0 => (vec![SortKey::asc(col("k"))], true),
        1 => (vec![SortKey::desc(col("k"))], true),
        2 => (vec![SortKey::asc(col("d"))], true),
        3 => (vec![SortKey::desc(col("d"))], true),
        4 => (vec![SortKey::asc(col("f"))], true),
        5 => (vec![SortKey::desc(col("f"))], true),
        6 => (vec![SortKey::asc(col("k")), SortKey::desc(col("d"))], false),
        7 => (vec![SortKey::desc(col("g")), SortKey::asc(col("v"))], false),
        _ => (vec![], false),
    };
    WindowSpec::new().partition_by(partition_by).order_by(order_by).frame(gen_frame(rng, range_ok))
}

/// A random function-level ORDER BY (the paper's independent inner ordering).
pub fn gen_inner_order(rng: &mut StdRng) -> Vec<SortKey> {
    match rng.gen_range(0u32..7) {
        0 => vec![SortKey::asc(col("v"))],
        1 => vec![SortKey::desc(col("v"))],
        2 => vec![SortKey::asc(col("f"))],
        3 => vec![SortKey::desc(col("f"))],
        4 => vec![SortKey::asc(col("d"))],
        5 => vec![SortKey::desc(col("d"))],
        _ => vec![SortKey::asc(col("v")), SortKey::desc(col("d"))],
    }
}

fn maybe_inner(rng: &mut StdRng) -> Vec<SortKey> {
    if rng.gen_bool(0.55) {
        gen_inner_order(rng)
    } else {
        vec![]
    }
}

/// A single numeric sort key (percentiles need exactly one orderable key).
fn numeric_key(rng: &mut StdRng) -> SortKey {
    let c = if rng.gen_bool(0.5) { col("v") } else { col("f") };
    if rng.gen_bool(0.5) {
        SortKey::asc(c)
    } else {
        SortKey::desc(c)
    }
}

/// An argument column together with a default literal of the same type
/// (LEAD/LAG defaults must not mix types in one output column).
fn arg_and_default(rng: &mut StdRng) -> (Expr, Expr) {
    match rng.gen_range(0u32..4) {
        0 => (col("v"), lit(-99i64)),
        1 => (col("f"), lit(-99.0)),
        2 => (col("g"), lit("none")),
        _ => (col("d"), lit(Value::Date(-1))),
    }
}

fn maybe_filter(rng: &mut StdRng, call: FunctionCall) -> FunctionCall {
    if !rng.gen_bool(0.3) {
        return call;
    }
    let days = col("d").sub(lit(Value::Date(0)));
    let pred = match rng.gen_range(0u32..4) {
        0 => days.rem(lit(3i64)).ne(lit(0i64)),
        // Three-valued: NULL operands make the predicate non-true.
        1 => col("v").gt(lit(0i64)),
        2 => col("f").le(lit(0.5)),
        _ => col("k").lt(lit(25i64)).or(col("v").ge(lit(5i64))),
    };
    call.filter(pred)
}

/// One random call drawn across all six evaluator families (distributive
/// aggregates, DISTINCT aggregates, rank, selection, LEAD/LAG, MODE).
pub fn gen_call(rng: &mut StdRng) -> FunctionCall {
    let days = || col("d").sub(lit(Value::Date(0)));
    let call = match rng.gen_range(0u32..21) {
        0 => FunctionCall::count_star(),
        1 => FunctionCall::count([col("v"), col("f"), col("g")][rng.gen_range(0usize..3)].clone()),
        2 => FunctionCall::count_distinct(
            [col("v"), col("g"), col("d")][rng.gen_range(0usize..3)].clone(),
        ),
        3 => {
            let c = FunctionCall::sum(if rng.gen_bool(0.5) { col("v") } else { col("f") });
            if rng.gen_bool(0.35) {
                c.distinct()
            } else {
                c
            }
        }
        4 => {
            let c = FunctionCall::avg(if rng.gen_bool(0.5) { col("v") } else { col("f") });
            if rng.gen_bool(0.35) {
                c.distinct()
            } else {
                c
            }
        }
        5 => FunctionCall::min(
            [col("v"), col("f"), col("g"), col("d")][rng.gen_range(0usize..4)].clone(),
        ),
        6 => FunctionCall::max(
            [col("v"), col("f"), col("g"), col("d")][rng.gen_range(0usize..4)].clone(),
        ),
        7 => FunctionCall::row_number(maybe_inner(rng)),
        8 => FunctionCall::rank(maybe_inner(rng)),
        9 => FunctionCall::dense_rank(maybe_inner(rng)),
        10 => FunctionCall::percent_rank(maybe_inner(rng)),
        11 => FunctionCall::cume_dist(maybe_inner(rng)),
        12 => {
            // Bucket count: constant or per-row (always ≥ 1, so valid).
            let buckets = if rng.gen_bool(0.7) {
                lit(rng.gen_range(1..6i64))
            } else {
                days().rem(lit(5i64)).add(lit(1i64))
            };
            FunctionCall::ntile(buckets, maybe_inner(rng))
        }
        13 => {
            let frac =
                [0.0, 0.25, 0.5, 0.99, 1.0, rng.gen_range(0.0..=1.0)][rng.gen_range(0usize..6)];
            FunctionCall::percentile_disc(frac, numeric_key(rng))
        }
        14 => {
            let frac = [0.0, 0.5, 1.0, rng.gen_range(0.0..=1.0)][rng.gen_range(0usize..4)];
            FunctionCall::percentile_cont(frac, numeric_key(rng))
        }
        15 => FunctionCall::median(if rng.gen_bool(0.5) { col("v") } else { col("f") }),
        16 | 17 => {
            let (arg, _) = arg_and_default(rng);
            let mut c = if rng.gen_bool(0.5) {
                FunctionCall::first_value(arg)
            } else {
                FunctionCall::last_value(arg)
            };
            if rng.gen_bool(0.55) {
                c = c.order_by(gen_inner_order(rng));
            }
            if rng.gen_bool(0.3) {
                c = c.ignore_nulls();
            }
            c
        }
        18 => {
            let (arg, _) = arg_and_default(rng);
            let n = if rng.gen_bool(0.7) {
                lit(rng.gen_range(1..5i64))
            } else {
                days().rem(lit(4i64)).add(lit(1i64))
            };
            let mut c = FunctionCall::nth_value(arg, n);
            if rng.gen_bool(0.55) {
                c = c.order_by(gen_inner_order(rng));
            }
            if rng.gen_bool(0.3) {
                c = c.ignore_nulls();
            }
            c
        }
        19 => {
            let (arg, default) = arg_and_default(rng);
            let kind = if rng.gen_bool(0.5) { FuncKind::Lead } else { FuncKind::Lag };
            // Offsets: zero (the current row, per SQL), small constants,
            // per-row expressions, and the extremes of the i64 range.
            let off: Expr = match rng.gen_range(0u32..8) {
                0 => lit(0i64),
                1..=4 => lit(rng.gen_range(1..5i64)),
                5 => lit(rng.gen_range(0..3i64)),
                6 => days().rem(lit(3i64)),
                _ => lit(if rng.gen_bool(0.5) { i64::MAX } else { i64::MIN }),
            };
            let mut c = FunctionCall::new(kind, vec![arg, off, default]);
            if rng.gen_bool(0.5) {
                c = c.order_by(gen_inner_order(rng));
            }
            if rng.gen_bool(0.3) {
                c = c.ignore_nulls();
            }
            c
        }
        _ => FunctionCall::mode([col("v"), col("g"), col("d")][rng.gen_range(0usize..3)].clone()),
    };
    maybe_filter(rng, call)
}

// `FrameMode` is re-exported so sweep/shrink code can pattern-match without a
// second import path.
pub use holistic_window::frame::FrameMode as Mode;

/// True when the frame carries any non-trivial feature (used by the shrinker
/// to decide whether frame simplification candidates are worth proposing).
pub fn frame_is_trivial(frame: &FrameSpec) -> bool {
    frame.mode == FrameMode::Rows
        && matches!(frame.start, FrameBound::UnboundedPreceding)
        && matches!(frame.end, FrameBound::UnboundedFollowing)
        && frame.exclusion == FrameExclusion::NoOthers
}
