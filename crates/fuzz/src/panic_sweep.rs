//! The negative half of the harness: invalid and extreme specifications must
//! yield [`holistic_window::Error`], never a panic, on the naive baseline and
//! every engine configuration.
//!
//! Two sources of cases:
//!
//! * a curated corpus of hand-built invalid specs — every rejection path the
//!   engine documents (negative/NULL/non-numeric/non-finite offsets, bad
//!   bound shapes, RANGE key restrictions, malformed call shapes, bad
//!   runtime arguments, type-mismatched outputs) plus extreme-but-valid
//!   specs that exercise the overflow-hardened arithmetic;
//! * seeded random cases from [`crate::gen`], each *poisoned* with one
//!   guaranteed-invalid mutation, so rejection paths are also reached from
//!   arbitrary surrounding spec shapes.
//!
//! Frame and argument errors surface per evaluated row, so `MustErr` is only
//! asserted when the table has rows; empty tables still assert no-panic.

use crate::diff::run_protected;
use crate::gen::{self, GenConfig};
use holistic_baselines::naive;
use holistic_window::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of a sweep run.
#[derive(Debug)]
pub struct SweepReport {
    /// Total cases executed (curated + random).
    pub cases: usize,
    /// One line per violated expectation; empty means the sweep passed.
    pub failures: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// Every execution must return `Err` (and must not panic).
    MustErr,
    /// Any `Result` is fine; only panics fail the sweep.
    NoPanic,
}

fn tiny_table() -> Table {
    Table::new(vec![
        ("g", Column::strs(vec!["x", "y", "x", "z", "y", "x"])),
        ("k", Column::ints_opt(vec![Some(3), None, Some(7), Some(3), Some(9), None])),
        ("v", Column::ints_opt(vec![Some(1), Some(-2), None, Some(4), Some(0), Some(2)])),
        (
            "f",
            Column::floats_opt(vec![Some(0.5), None, Some(-1.5), Some(2.0), Some(0.5), Some(3.25)]),
        ),
        ("d", Column::dates(vec![0, 1, 2, 3, 4, 5])),
    ])
    .expect("fixed table is well-formed")
}

/// A query over `ORDER BY k` with the given frame and a harmless call.
fn frame_query(frame: FrameSpec) -> WindowQuery {
    WindowQuery::over(WindowSpec::new().order_by(vec![SortKey::asc(col("k"))]).frame(frame))
        .call(FunctionCall::count_star().named("c"))
}

/// A whole-partition query around one (possibly malformed) call.
fn call_query(call: FunctionCall) -> WindowQuery {
    WindowQuery::over(WindowSpec::new()).call(call.named("c"))
}

fn curated() -> Vec<(String, Expect, WindowQuery)> {
    use Expect::{MustErr, NoPanic};
    let days = || col("d").sub(lit(Value::Date(0)));
    let mut out: Vec<(String, Expect, WindowQuery)> = Vec::new();
    let mut add = |desc: &str, expect: Expect, q: WindowQuery| {
        out.push((desc.to_string(), expect, q));
    };

    // -- invalid frame offsets, across all three modes ---------------------
    add(
        "rows negative int offset",
        MustErr,
        frame_query(FrameSpec::rows(FrameBound::Preceding(lit(-1i64)), FrameBound::CurrentRow)),
    );
    add(
        "rows negative float offset",
        MustErr,
        frame_query(FrameSpec::rows(FrameBound::CurrentRow, FrameBound::Following(lit(-3.5)))),
    );
    add(
        "range NULL offset",
        MustErr,
        frame_query(FrameSpec::range(
            FrameBound::Preceding(lit(Value::Null)),
            FrameBound::CurrentRow,
        )),
    );
    add(
        "groups string offset",
        MustErr,
        frame_query(FrameSpec::groups(FrameBound::CurrentRow, FrameBound::Following(lit("x")))),
    );
    add(
        "rows bool offset",
        MustErr,
        frame_query(FrameSpec::rows(FrameBound::Preceding(lit(true)), FrameBound::CurrentRow)),
    );
    add(
        "range NaN offset",
        MustErr,
        frame_query(FrameSpec::range(FrameBound::CurrentRow, FrameBound::Following(lit(f64::NAN)))),
    );
    add(
        "rows infinite offset",
        MustErr,
        frame_query(FrameSpec::rows(
            FrameBound::Following(lit(f64::INFINITY)),
            FrameBound::UnboundedFollowing,
        )),
    );
    add(
        "per-row offset going negative",
        MustErr,
        frame_query(FrameSpec::rows(
            FrameBound::Preceding(days().sub(lit(10i64))),
            FrameBound::CurrentRow,
        )),
    );
    add(
        "per-row offset of string type",
        MustErr,
        frame_query(FrameSpec::groups(FrameBound::Preceding(col("g")), FrameBound::CurrentRow)),
    );

    // -- invalid bound shapes ---------------------------------------------
    add(
        "UNBOUNDED FOLLOWING as frame start",
        MustErr,
        frame_query(FrameSpec::rows(
            FrameBound::UnboundedFollowing,
            FrameBound::UnboundedFollowing,
        )),
    );
    add(
        "UNBOUNDED PRECEDING as frame end",
        MustErr,
        frame_query(FrameSpec::range(
            FrameBound::UnboundedPreceding,
            FrameBound::UnboundedPreceding,
        )),
    );

    // -- RANGE key restrictions -------------------------------------------
    add(
        "range offsets over multi-key ORDER BY",
        MustErr,
        WindowQuery::over(
            WindowSpec::new()
                .order_by(vec![SortKey::asc(col("k")), SortKey::desc(col("d"))])
                .frame(FrameSpec::range(FrameBound::Preceding(lit(1i64)), FrameBound::CurrentRow)),
        )
        .call(FunctionCall::count_star().named("c")),
    );
    add(
        "range offsets over string ORDER BY key",
        MustErr,
        WindowQuery::over(
            WindowSpec::new()
                .order_by(vec![SortKey::asc(col("g"))])
                .frame(FrameSpec::range(FrameBound::CurrentRow, FrameBound::Following(lit(2i64)))),
        )
        .call(FunctionCall::count_star().named("c")),
    );

    // -- malformed call shapes (structural validation) ---------------------
    add(
        "count(*) with an argument",
        MustErr,
        call_query(FunctionCall::new(FuncKind::CountStar, vec![col("v")])),
    );
    add("sum with no argument", MustErr, call_query(FunctionCall::new(FuncKind::Sum, vec![])));
    add("rank DISTINCT", MustErr, call_query(FunctionCall::rank(vec![]).distinct()));
    add("sum IGNORE NULLS", MustErr, call_query(FunctionCall::sum(col("v")).ignore_nulls()));
    add("mode DISTINCT", MustErr, call_query(FunctionCall::mode(col("v")).distinct()));
    add(
        "percentile without ORDER BY",
        MustErr,
        call_query(FunctionCall::new(FuncKind::PercentileDisc, vec![lit(0.5)])),
    );
    add(
        "nth_value with one argument",
        MustErr,
        call_query(FunctionCall::new(FuncKind::NthValue, vec![col("v")])),
    );
    add("unknown column", MustErr, call_query(FunctionCall::sum(col("nope"))));

    // -- bad runtime arguments --------------------------------------------
    add("ntile of zero", MustErr, call_query(FunctionCall::ntile(lit(0i64), vec![])));
    add("ntile of negative", MustErr, call_query(FunctionCall::ntile(lit(-2i64), vec![])));
    add("ntile of string", MustErr, call_query(FunctionCall::ntile(lit("x"), vec![])));
    add("nth_value n = 0", MustErr, call_query(FunctionCall::nth_value(col("v"), lit(0i64))));
    add("nth_value n < 0", MustErr, call_query(FunctionCall::nth_value(col("v"), lit(-1i64))));
    add("nth_value n of string", MustErr, call_query(FunctionCall::nth_value(col("v"), lit("x"))));
    add(
        "lead with string offset",
        MustErr,
        call_query(FunctionCall::new(FuncKind::Lead, vec![col("v"), lit("x"), lit(0i64)])),
    );
    add(
        "percentile_disc fraction < 0",
        MustErr,
        call_query(
            FunctionCall::new(FuncKind::PercentileDisc, vec![lit(-0.2)])
                .order_by(vec![SortKey::asc(col("v"))]),
        ),
    );
    add(
        "percentile_disc fraction > 1",
        MustErr,
        call_query(FunctionCall::percentile_disc(1.5, SortKey::asc(col("v")))),
    );
    add(
        "percentile_cont NaN fraction",
        MustErr,
        call_query(FunctionCall::percentile_cont(f64::NAN, SortKey::asc(col("f")))),
    );
    add(
        "percentile_disc string fraction",
        MustErr,
        call_query(
            FunctionCall::new(FuncKind::PercentileDisc, vec![lit("x")])
                .order_by(vec![SortKey::asc(col("v"))]),
        ),
    );
    add(
        "lead default of mismatched type",
        MustErr,
        call_query(FunctionCall::lead(col("v"), 1, lit("zzz"))),
    );
    add("sum over strings", MustErr, call_query(FunctionCall::sum(col("g"))));

    // -- extreme but valid: must not panic (overflow hardening) ------------
    for (name, big) in
        [("i64::MAX", lit(i64::MAX)), ("1e300", lit(1e300)), ("f64::MAX", lit(f64::MAX))]
    {
        for frame in [
            FrameSpec::rows(FrameBound::Preceding(big.clone()), FrameBound::Following(big.clone())),
            FrameSpec::range(
                FrameBound::Preceding(big.clone()),
                FrameBound::Following(big.clone()),
            ),
            FrameSpec::groups(
                FrameBound::Following(big.clone()),
                FrameBound::Following(big.clone()),
            ),
        ] {
            add(&format!("huge {name} offset, {:?} mode", frame.mode), NoPanic, frame_query(frame));
        }
    }
    add(
        "reversed constant bounds (empty frames)",
        NoPanic,
        frame_query(FrameSpec::rows(
            FrameBound::Following(lit(5i64)),
            FrameBound::Preceding(lit(5i64)),
        )),
    );
    add(
        "lead offset i64::MIN",
        NoPanic,
        call_query(FunctionCall::lead(col("v"), i64::MIN, lit(-1i64))),
    );
    add(
        "lag offset i64::MAX ignore nulls",
        NoPanic,
        call_query(FunctionCall::lag(col("v"), i64::MAX, lit(-1i64)).ignore_nulls()),
    );
    add(
        "non-boolean FILTER predicate",
        NoPanic,
        call_query(FunctionCall::count_star().filter(col("v").add(lit(1i64)))),
    );

    out
}

/// One guaranteed-invalid mutation of a generated query. Frame poisons keep
/// the generated calls; call poisons replace them (with a whole-partition
/// frame, so the bad argument is certainly evaluated).
fn poison(rng: &mut StdRng, mut query: WindowQuery) -> (String, WindowQuery) {
    let desc;
    match rng.gen_range(0u32..8) {
        0 => {
            desc = "poison: negative frame offset";
            query.spec.frame = FrameSpec::rows(
                FrameBound::Preceding(lit(-rng.gen_range(1..9i64))),
                FrameBound::CurrentRow,
            );
        }
        1 => {
            desc = "poison: NULL frame offset";
            query.spec.frame =
                FrameSpec::groups(FrameBound::CurrentRow, FrameBound::Following(lit(Value::Null)));
        }
        2 => {
            desc = "poison: string frame offset";
            query.spec.frame = FrameSpec::rows(
                FrameBound::Following(lit("bogus")),
                FrameBound::UnboundedFollowing,
            );
        }
        3 => {
            desc = "poison: UNBOUNDED FOLLOWING frame start";
            query.spec.frame =
                FrameSpec::rows(FrameBound::UnboundedFollowing, FrameBound::UnboundedFollowing);
        }
        4 => {
            desc = "poison: ntile(0)";
            query.spec.frame = FrameSpec::whole_partition();
            query.calls = vec![FunctionCall::ntile(lit(0i64), vec![]).named("c")];
        }
        5 => {
            // Key column `d` is never NULL, so the kept set is non-empty and
            // the fraction is certainly read.
            desc = "poison: percentile fraction out of range";
            query.spec.frame = FrameSpec::whole_partition();
            query.calls =
                vec![FunctionCall::percentile_disc(1.5, SortKey::asc(col("d"))).named("c")];
        }
        6 => {
            desc = "poison: nth_value n = 0";
            query.spec.frame = FrameSpec::whole_partition();
            query.calls = vec![FunctionCall::nth_value(col("d"), lit(0i64)).named("c")];
        }
        _ => {
            desc = "poison: unknown column";
            query.calls = vec![FunctionCall::sum(col("nope")).named("c")];
        }
    }
    (desc.to_string(), query)
}

fn sweep_one(
    desc: &str,
    expect: Expect,
    table: &Table,
    query: &WindowQuery,
    failures: &mut Vec<String>,
) {
    let mut runs: Vec<(String, Result<holistic_window::Result<Table>, crate::Divergence>)> =
        vec![("naive".into(), run_protected("naive", || naive::execute(query, table)))];
    for opts in ExecOptions::all_configs() {
        let label = opts.label();
        runs.push((label.clone(), run_protected(&label, || query.execute_with(table, opts))));
    }
    // Every forced strategy must also reject invalid specs cleanly: the
    // direct and alternate evaluators have their own argument-validation
    // paths, which only forcing reaches on these tiny tables.
    for s in Strategy::ALL {
        let opts = ExecOptions::serial().force_strategy(s);
        let label = opts.label();
        runs.push((label.clone(), run_protected(&label, || query.execute_with(table, opts))));
    }
    // Budget-constrained configs: a tiny budget routes builds through the
    // spill/eviction machinery (or the typed `BudgetExceeded`), which must
    // reject invalid specs as cleanly as the unbudgeted paths — an Err
    // either way satisfies `MustErr`, but a panic never does.
    for opts in [
        ExecOptions::serial().memory_budget(4096),
        ExecOptions::serial().force_strategy(Strategy::Mst).memory_budget(4096),
    ] {
        let label = opts.label();
        runs.push((label.clone(), run_protected(&label, || query.execute_with(table, opts))));
    }
    for (label, run) in runs {
        match run {
            Err(d) => failures.push(format!("{desc} [{label}]: {}", d.message)),
            Ok(Ok(_)) if expect == Expect::MustErr => {
                failures.push(format!("{desc} [{label}]: expected Error, got Ok"))
            }
            Ok(_) => {}
        }
    }
}

/// Runs the sweep: the curated corpus plus `random_cases` poisoned random
/// cases derived from `seed`. Deterministic per (seed, random_cases, max_n).
pub fn panic_sweep(seed: u64, random_cases: usize, max_n: usize) -> SweepReport {
    let mut failures = Vec::new();
    let mut cases = 0usize;

    let table = tiny_table();
    for (desc, expect, query) in curated() {
        cases += 1;
        sweep_one(&desc, expect, &table, &query, &mut failures);
    }

    let cfg = GenConfig { max_n, ..GenConfig::default() };
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..random_cases {
        cases += 1;
        let case = gen::generate(gen::case_seed(seed, i as u64), &cfg);
        let (desc, query) = poison(&mut rng, case.query);
        // Frame/argument errors surface per evaluated row; an empty table
        // legitimately returns Ok, so only assert no-panic there.
        let expect = if case.table.num_rows() == 0 { Expect::NoPanic } else { Expect::MustErr };
        let desc = format!("seed {:#x} {desc}", case.seed);
        sweep_one(&desc, expect, &case.table, &query, &mut failures);
    }

    SweepReport { cases, failures }
}
