//! The fuzz subsystem's own tier-1 tests: a deterministic differential
//! smoke run, a panic-sweep run, and shrinker unit checks.

use holistic_fuzz::gen::{case_seed, generate, GenConfig};
use holistic_fuzz::shrink::{shrink, subset_rows};
use holistic_fuzz::{check_case, panic_sweep, with_quiet_panics};
use holistic_window::prelude::*;
use holistic_window::DataType;

#[test]
fn differential_smoke() {
    let cfg = GenConfig { max_n: 24, max_calls: 4 };
    let failures: Vec<String> = with_quiet_panics(|| {
        (0..120u64)
            .filter_map(|i| {
                let case = generate(case_seed(0xD1FF, i), &cfg);
                check_case(&case.table, &case.query)
                    .err()
                    .map(|d| format!("case {i} (seed {:#x}): {d}", case.seed))
            })
            .collect()
    });
    assert!(failures.is_empty(), "divergences:\n{}", failures.join("\n"));
}

#[test]
fn panic_sweep_smoke() {
    let report = with_quiet_panics(|| panic_sweep(0x5EED, 50, 16));
    assert!(
        report.failures.is_empty(),
        "{} sweep failures:\n{}",
        report.failures.len(),
        report.failures.join("\n")
    );
}

#[test]
fn generator_is_deterministic_per_seed() {
    let cfg = GenConfig::default();
    let a = generate(42, &cfg);
    let b = generate(42, &cfg);
    assert_eq!(a.table.num_rows(), b.table.num_rows());
    assert_eq!(format!("{:?}", a.query), format!("{:?}", b.query));
    for (na, ca) in a.table.iter() {
        assert_eq!(ca.to_values(), b.table.column(na).unwrap().to_values());
    }
    // Distinct seeds diverge (astronomically unlikely to collide).
    let c = generate(43, &cfg);
    assert!(
        format!("{:?}", a.query) != format!("{:?}", c.query)
            || a.table.num_rows() != c.table.num_rows()
    );
}

#[test]
fn subset_rows_preserves_types_on_all_null_selections() {
    let t = Table::new(vec![
        ("a", Column::ints_opt(vec![Some(1), None, Some(3)])),
        ("b", Column::floats_opt(vec![None, None, Some(0.5)])),
    ])
    .unwrap();
    let s = subset_rows(&t, &[1]);
    assert_eq!(s.num_rows(), 1);
    assert_eq!(s.column("a").unwrap().data_type(), DataType::Int);
    assert_eq!(s.column("b").unwrap().data_type(), DataType::Float);
    assert_eq!(s.column("a").unwrap().get(0), Value::Null);
}

#[test]
fn shrinker_minimizes_a_synthetic_failure() {
    // Failure predicate: the table still contains v == 7 and the query still
    // has at least one call. The minimum is one row, one call, with every
    // optional feature stripped.
    let v: Vec<Option<i64>> = (0..30).map(|i| Some(if i == 17 { 7 } else { i })).collect();
    let d: Vec<i32> = (0..30).collect();
    let table = Table::new(vec![
        ("v", Column::ints_opt(v)),
        ("d", Column::dates(d)),
        ("g", Column::strs(vec!["x"; 30])),
    ])
    .unwrap();
    let query = WindowQuery::over(
        WindowSpec::new()
            .partition_by(vec![col("g")])
            .order_by(vec![SortKey::asc(col("d"))])
            .frame(
                FrameSpec::groups(FrameBound::Preceding(lit(2i64)), FrameBound::CurrentRow)
                    .exclude(FrameExclusion::Ties),
            ),
    )
    .call(FunctionCall::sum(col("v")).filter(col("v").gt(lit(0i64))).named("a"))
    .call(FunctionCall::count_star().named("b"))
    .call(FunctionCall::median(col("v")).named("c"));

    let pred = |t: &Table, q: &WindowQuery| {
        !q.calls.is_empty()
            && t.column("v").map(|c| c.to_values().contains(&Value::Int(7))).unwrap_or(false)
    };
    assert!(pred(&table, &query));
    let (st, sq) = shrink(&table, &query, &pred);
    assert_eq!(st.num_rows(), 1, "rows not minimized: {}", st.num_rows());
    assert_eq!(st.column("v").unwrap().get(0), Value::Int(7));
    assert_eq!(sq.calls.len(), 1, "calls not minimized");
    assert!(sq.spec.partition_by.is_empty(), "partitioning not stripped");
    assert!(sq.spec.order_by.is_empty(), "order by not stripped");
    assert!(sq.calls[0].filter.is_none(), "filter not stripped");
    assert_eq!(sq.spec.frame.exclusion, FrameExclusion::NoOthers);
}
