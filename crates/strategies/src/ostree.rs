//! A counted B-tree — the order-statistic-tree competitor (§5.5).
//!
//! The paper benchmarks windowed percentiles against "an open-source
//! implementation of order statistic B-Trees" (Tatham's counted B-trees): a
//! B-tree whose nodes carry subtree sizes, giving O(log n) `insert`,
//! `remove`, `select` (k-th smallest) and `rank` (count of smaller elements)
//! over a multiset. Sliding a frame costs O(log n) per row — O(n log n)
//! total — but the structure is inherently serial: task-based parallelism
//! must rebuild it per task (§3.2), which [`crate::taskpar`] makes visible.
//!
//! Implementation: CLRS-style B-tree with minimum degree `T`, duplicates
//! allowed (an element equal to a separator key goes left, so `rank` returns
//! the count of *strictly smaller* elements).

const T: usize = 16; // minimum degree: nodes hold T-1 ..= 2T-1 keys

#[derive(Clone)]
struct Node {
    keys: Vec<i64>,
    #[allow(clippy::vec_box)] // children move during splits/merges; boxing keeps those moves O(1)
    children: Vec<Box<Node>>,
    /// Total number of keys in this subtree.
    size: usize,
}

impl Node {
    fn leaf() -> Self {
        Node { keys: Vec::with_capacity(2 * T - 1), children: Vec::new(), size: 0 }
    }

    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    fn recount(&mut self) {
        self.size = self.keys.len() + self.children.iter().map(|c| c.size).sum::<usize>();
    }
}

/// An order-statistic multiset of `i64` values.
pub struct OrderStatisticTree {
    root: Box<Node>,
}

impl Default for OrderStatisticTree {
    fn default() -> Self {
        Self::new()
    }
}

impl OrderStatisticTree {
    /// An empty tree.
    pub fn new() -> Self {
        OrderStatisticTree { root: Box::new(Node::leaf()) }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.root.size
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts one occurrence of `v`. O(log n).
    pub fn insert(&mut self, v: i64) {
        if self.root.keys.len() == 2 * T - 1 {
            // Grow: split the root.
            let mut new_root = Box::new(Node::leaf());
            std::mem::swap(&mut new_root, &mut self.root);
            let old_root = new_root;
            self.root.children.push(old_root);
            self.split_child(0);
            self.root.recount();
        }
        Self::insert_nonfull(&mut self.root, v);
    }

    fn split_child(&mut self, idx: usize) {
        split_child_of(&mut self.root, idx);
    }

    fn insert_nonfull(node: &mut Node, v: i64) {
        node.size += 1;
        if node.is_leaf() {
            let pos = node.keys.partition_point(|&k| k < v);
            node.keys.insert(pos, v);
            return;
        }
        let mut idx = node.keys.partition_point(|&k| k < v);
        if node.children[idx].keys.len() == 2 * T - 1 {
            split_child_of(node, idx);
            if v > node.keys[idx] {
                idx += 1;
            }
        }
        Self::insert_nonfull(&mut node.children[idx], v);
    }

    /// Removes one occurrence of `v`. Panics if absent. O(log n).
    pub fn remove(&mut self, v: i64) {
        remove_from(&mut self.root, v);
        if !self.root.is_leaf() && self.root.keys.is_empty() {
            // Shrink: the root lost its last separator.
            let child = self.root.children.pop().expect("underflowed root");
            self.root = child;
        }
    }

    /// The `k`-th smallest element (0-based), if present. O(log n).
    pub fn select(&self, k: usize) -> Option<i64> {
        if k >= self.len() {
            return None;
        }
        let mut node = &self.root;
        let mut k = k;
        loop {
            if node.is_leaf() {
                return Some(node.keys[k]);
            }
            for (i, child) in node.children.iter().enumerate() {
                if k < child.size {
                    node = child;
                    break;
                }
                k -= child.size;
                if i < node.keys.len() {
                    if k == 0 {
                        return Some(node.keys[i]);
                    }
                    k -= 1;
                }
            }
        }
    }

    /// Number of elements strictly smaller than `v`. O(log n).
    pub fn rank(&self, v: i64) -> usize {
        let mut node = &self.root;
        let mut acc = 0usize;
        loop {
            let idx = node.keys.partition_point(|&k| k < v);
            acc += idx;
            if node.is_leaf() {
                return acc;
            }
            acc += node.children[..idx].iter().map(|c| c.size).sum::<usize>();
            node = &node.children[idx];
        }
    }

    /// The discrete percentile (smallest value with cume_dist ≥ p), if any.
    pub fn percentile_disc(&self, p: f64) -> Option<i64> {
        let s = self.len();
        if s == 0 {
            return None;
        }
        let j = ((p * s as f64).ceil() as usize).clamp(1, s);
        self.select(j - 1)
    }
}

fn split_child_of(parent: &mut Node, idx: usize) {
    let child = &mut parent.children[idx];
    debug_assert_eq!(child.keys.len(), 2 * T - 1);
    let mut right = Box::new(Node::leaf());
    right.keys = child.keys.split_off(T);
    let median = child.keys.pop().expect("full node");
    if !child.is_leaf() {
        right.children = child.children.split_off(T);
    }
    child.recount();
    right.recount();
    parent.keys.insert(idx, median);
    parent.children.insert(idx + 1, right);
}

/// CLRS B-tree deletion, counting-aware. Assumes `v` is present in the
/// subtree; the caller (and `fill`) guarantee non-minimal nodes on descent.
fn remove_from(node: &mut Node, v: i64) {
    node.size -= 1;
    let idx = node.keys.partition_point(|&k| k < v);
    if idx < node.keys.len() && node.keys[idx] == v {
        if node.is_leaf() {
            node.keys.remove(idx);
            return;
        }
        // Internal hit: replace with predecessor or successor, or merge.
        if node.children[idx].size > 0 && node.children[idx].keys.len() >= T {
            let pred = max_of(&node.children[idx]);
            node.keys[idx] = pred;
            remove_from(&mut node.children[idx], pred);
        } else if node.children[idx + 1].keys.len() >= T {
            let succ = min_of(&node.children[idx + 1]);
            node.keys[idx] = succ;
            remove_from(&mut node.children[idx + 1], succ);
        } else {
            merge_children(node, idx);
            remove_from(&mut node.children[idx], v);
        }
        return;
    }
    debug_assert!(!node.is_leaf(), "removing absent value");
    let mut idx = idx;
    if node.children[idx].keys.len() < T {
        idx = fill(node, idx);
    }
    remove_from(&mut node.children[idx], v);
}

fn max_of(node: &Node) -> i64 {
    let mut n = node;
    while !n.is_leaf() {
        n = n.children.last().unwrap();
    }
    *n.keys.last().unwrap()
}

fn min_of(node: &Node) -> i64 {
    let mut n = node;
    while !n.is_leaf() {
        n = n.children.first().unwrap();
    }
    *n.keys.first().unwrap()
}

/// Ensures child `idx` has at least T keys; returns the (possibly shifted)
/// index of the child that now covers the original key range.
fn fill(node: &mut Node, idx: usize) -> usize {
    if idx > 0 && node.children[idx - 1].keys.len() >= T {
        // Borrow from the left sibling.
        let (left, right) = node.children.split_at_mut(idx);
        let left = &mut left[idx - 1];
        let cur = &mut right[0];
        let sep = node.keys[idx - 1];
        cur.keys.insert(0, sep);
        node.keys[idx - 1] = left.keys.pop().unwrap();
        if !left.is_leaf() {
            let moved = left.children.pop().unwrap();
            cur.children.insert(0, moved);
        }
        left.recount();
        cur.recount();
        idx
    } else if idx + 1 < node.children.len() && node.children[idx + 1].keys.len() >= T {
        // Borrow from the right sibling.
        let (left, right) = node.children.split_at_mut(idx + 1);
        let cur = &mut left[idx];
        let sib = &mut right[0];
        let sep = node.keys[idx];
        cur.keys.push(sep);
        node.keys[idx] = sib.keys.remove(0);
        if !sib.is_leaf() {
            let moved = sib.children.remove(0);
            cur.children.push(moved);
        }
        cur.recount();
        sib.recount();
        idx
    } else if idx + 1 < node.children.len() {
        merge_children(node, idx);
        idx
    } else {
        merge_children(node, idx - 1);
        idx - 1
    }
}

/// Merges child `idx`, separator `idx` and child `idx + 1`.
fn merge_children(node: &mut Node, idx: usize) {
    let sep = node.keys.remove(idx);
    let mut right = node.children.remove(idx + 1);
    let left = &mut node.children[idx];
    left.keys.push(sep);
    left.keys.append(&mut right.keys);
    left.children.append(&mut right.children);
    left.recount();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn insert_select_rank_small() {
        let mut t = OrderStatisticTree::new();
        for v in [5, 1, 3, 3, 9, -2] {
            t.insert(v);
        }
        assert_eq!(t.len(), 6);
        let sel: Vec<_> = (0..6).map(|k| t.select(k).unwrap()).collect();
        assert_eq!(sel, vec![-2, 1, 3, 3, 5, 9]);
        assert_eq!(t.select(6), None);
        assert_eq!(t.rank(3), 2);
        assert_eq!(t.rank(4), 4);
        assert_eq!(t.rank(-100), 0);
        assert_eq!(t.rank(100), 6);
    }

    #[test]
    fn remove_keeps_order() {
        let mut t = OrderStatisticTree::new();
        for v in [4, 4, 4, 2, 8] {
            t.insert(v);
        }
        t.remove(4);
        assert_eq!(t.len(), 4);
        let sel: Vec<_> = (0..4).map(|k| t.select(k).unwrap()).collect();
        assert_eq!(sel, vec![2, 4, 4, 8]);
        t.remove(2);
        t.remove(8);
        assert_eq!((0..t.len()).map(|k| t.select(k).unwrap()).collect::<Vec<_>>(), vec![4, 4]);
    }

    #[test]
    fn percentile_disc_matches_definition() {
        let mut t = OrderStatisticTree::new();
        for v in 1..=10 {
            t.insert(v);
        }
        assert_eq!(t.percentile_disc(0.5), Some(5));
        assert_eq!(t.percentile_disc(0.0), Some(1));
        assert_eq!(t.percentile_disc(1.0), Some(10));
        assert_eq!(OrderStatisticTree::new().percentile_disc(0.5), None);
    }

    #[test]
    fn random_against_sorted_vec_oracle() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..25 {
            let mut t = OrderStatisticTree::new();
            let mut oracle: Vec<i64> = Vec::new();
            for step in 0..800 {
                let remove = !oracle.is_empty() && rng.gen_bool(0.4);
                if remove {
                    let v = oracle[rng.gen_range(0..oracle.len())];
                    t.remove(v);
                    let pos = oracle.iter().position(|&x| x == v).unwrap();
                    oracle.remove(pos);
                } else {
                    let v = rng.gen_range(-30..30);
                    t.insert(v);
                    let pos = oracle.partition_point(|&x| x < v);
                    oracle.insert(pos, v);
                }
                assert_eq!(t.len(), oracle.len(), "trial {trial} step {step}");
                if step % 37 == 0 {
                    for (k, &expect) in oracle.iter().enumerate() {
                        assert_eq!(t.select(k), Some(expect), "trial {trial} step {step} k {k}");
                    }
                    for v in -31..31 {
                        assert_eq!(
                            t.rank(v),
                            oracle.partition_point(|&x| x < v),
                            "trial {trial} step {step} v {v}"
                        );
                    }
                }
            }
            // Drain completely to exercise merges down to the root.
            while let Some(v) = t.select(0) {
                t.remove(v);
            }
            assert!(t.is_empty());
        }
    }

    #[test]
    fn large_sequential_insert_drain() {
        let mut t = OrderStatisticTree::new();
        for v in 0..10_000 {
            t.insert(v);
        }
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.select(5_000), Some(5_000));
        assert_eq!(t.rank(7_500), 7_500);
        for v in (0..10_000).rev() {
            t.remove(v);
        }
        assert!(t.is_empty());
    }
}
