//! Task-based parallel wrappers for stateful sliding algorithms (§3.2, §5.5).
//!
//! Modern engines split work into fixed-size tasks (Hyper: 20 000 tuples).
//! A sliding-state algorithm cannot resume mid-stream: each task must first
//! *re-aggregate every tuple of its first frame* before producing output.
//! With O(n) tasks this warm-up work makes parallelized incremental
//! algorithms O(n · frame) — quadratic for large frames — which is exactly
//! the effect Figures 10–12 measure. The driver below reproduces it
//! faithfully: the warm-up is real work, so the penalty is visible even on a
//! single core.

use rayon::prelude::*;

/// Hyper's task granularity (§5.5).
pub const HYPER_TASK_SIZE: usize = 20_000;

/// Counters of one task-parallel slide, in the spirit of the engine's
/// probe-kernel stats: they make the §3.2 re-warm overhead measurable
/// instead of opaque.
///
/// `warmup_adds` counts the `add` calls a task performs *before emitting its
/// first output row* — pure repeated work that the serial algorithm would
/// not do. `slide_adds`/`slide_removes` are the steady-state updates after
/// warm-up. The parallelization penalty of Figures 10–12 is exactly
/// `warmup_adds` growing with the frame size times the task count.
///
/// ```
/// use holistic_strategies::taskpar::{percentile_stats, SlideStats};
/// let vals = [5i64, 1, 4, 2, 3, 9, 8];
/// let frames: Vec<(usize, usize)> = (0..7usize).map(|i| (i.saturating_sub(3), i + 1)).collect();
/// let (serial, s0) = percentile_stats(&vals, &frames, 0.5, usize::MAX, false);
/// let (tasked, s1) = percentile_stats(&vals, &frames, 0.5, 2, false);
/// assert_eq!(serial, tasked);            // outputs are task-size invariant
/// assert_eq!(s0.tasks, 1);
/// assert!(s1.warmup_adds > s0.warmup_adds); // …but the re-warm work is not
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlideStats {
    /// Number of tasks the frame sequence was split into.
    pub tasks: u64,
    /// `add` calls performed before a task's first output row (re-warm work).
    pub warmup_adds: u64,
    /// `add` calls performed after a task's first output row.
    pub slide_adds: u64,
    /// `remove` calls performed after a task's first output row (warm-up
    /// never removes: the state starts empty).
    pub slide_removes: u64,
}

impl SlideStats {
    /// Total `add` calls, warm-up included.
    pub fn total_adds(&self) -> u64 {
        self.warmup_adds + self.slide_adds
    }

    /// Fraction of all `add` calls spent re-warming task states (0 when no
    /// adds happened at all).
    pub fn warmup_fraction(&self) -> f64 {
        let total = self.total_adds();
        if total == 0 {
            0.0
        } else {
            self.warmup_adds as f64 / total as f64
        }
    }

    /// Accumulates another run's counters into this one.
    pub fn merge_from(&mut self, other: &SlideStats) {
        self.tasks += other.tasks;
        self.warmup_adds += other.warmup_adds;
        self.slide_adds += other.slide_adds;
        self.slide_removes += other.slide_removes;
    }
}

/// Evaluates a sliding-state algorithm over `frames`, split into tasks of
/// `task_size` output rows. Each task builds a fresh state via `mk_state`,
/// warms it up to its first row's frame, then slides.
///
/// With `task_size >= frames.len()` this degenerates to the serial
/// incremental algorithm.
pub fn task_parallel_slide<S, Out>(
    frames: &[(usize, usize)],
    task_size: usize,
    parallel: bool,
    mk_state: impl Fn() -> S + Sync,
    add: impl Fn(&mut S, usize) + Sync,
    remove: impl Fn(&mut S, usize) + Sync,
    result: impl Fn(&mut S, usize) -> Out + Sync,
) -> Vec<Out>
where
    S: Send,
    Out: Send,
{
    task_parallel_slide_stats(frames, task_size, parallel, mk_state, add, remove, result).0
}

/// [`task_parallel_slide`] with per-run [`SlideStats`] counters.
pub fn task_parallel_slide_stats<S, Out>(
    frames: &[(usize, usize)],
    task_size: usize,
    parallel: bool,
    mk_state: impl Fn() -> S + Sync,
    add: impl Fn(&mut S, usize) + Sync,
    remove: impl Fn(&mut S, usize) + Sync,
    result: impl Fn(&mut S, usize) -> Out + Sync,
) -> (Vec<Out>, SlideStats)
where
    S: Send,
    Out: Send,
{
    use std::cell::Cell;
    let task_size = task_size.max(1);
    let run_task = |(t0, chunk): (usize, &[(usize, usize)])| -> (Vec<Out>, SlideStats) {
        let mut state = mk_state();
        let mut outs = Vec::with_capacity(chunk.len());
        // Cells: the add/remove/out closures below each observe the counters.
        let (warmup_adds, slide_adds, slide_removes) =
            (Cell::new(0u64), Cell::new(0u64), Cell::new(0u64));
        let warming = Cell::new(true);
        crate::incremental::slide(
            chunk,
            &mut state,
            |s, p| {
                let c = if warming.get() { &warmup_adds } else { &slide_adds };
                c.set(c.get() + 1);
                add(s, p)
            },
            |s, p| {
                slide_removes.set(slide_removes.get() + 1);
                remove(s, p)
            },
            |s, local_i| {
                warming.set(false);
                outs.push(result(s, t0 + local_i))
            },
        );
        let stats = SlideStats {
            tasks: 1,
            warmup_adds: warmup_adds.get(),
            slide_adds: slide_adds.get(),
            slide_removes: slide_removes.get(),
        };
        (outs, stats)
    };
    let tasks: Vec<(usize, &[(usize, usize)])> =
        frames.chunks(task_size).enumerate().map(|(t, c)| (t * task_size, c)).collect();
    let per_task: Vec<(Vec<Out>, SlideStats)> = if parallel {
        tasks.into_par_iter().map(run_task).collect()
    } else {
        tasks.into_iter().map(run_task).collect()
    };
    let mut totals = SlideStats::default();
    let mut outs = Vec::with_capacity(frames.len());
    for (o, s) in per_task {
        totals.merge_from(&s);
        outs.extend(o);
    }
    (outs, totals)
}

/// Task-parallel incremental distinct count (the "incremental" line of the
/// distinct-count panel in Figure 10).
pub fn distinct_count(
    hashes: &[u64],
    frames: &[(usize, usize)],
    task_size: usize,
    parallel: bool,
) -> Vec<usize> {
    distinct_count_stats(hashes, frames, task_size, parallel).0
}

/// [`distinct_count`] with [`SlideStats`] re-warm counters.
pub fn distinct_count_stats(
    hashes: &[u64],
    frames: &[(usize, usize)],
    task_size: usize,
    parallel: bool,
) -> (Vec<usize>, SlideStats) {
    use rustc_hash::FxHashMap;
    struct St {
        counts: FxHashMap<u64, u32>,
        distinct: usize,
    }
    task_parallel_slide_stats(
        frames,
        task_size,
        parallel,
        || St { counts: FxHashMap::default(), distinct: 0 },
        |s, p| {
            let c = s.counts.entry(hashes[p]).or_insert(0);
            if *c == 0 {
                s.distinct += 1;
            }
            *c += 1;
        },
        |s, p| {
            let c = s.counts.get_mut(&hashes[p]).expect("absent");
            *c -= 1;
            if *c == 0 {
                s.distinct -= 1;
            }
        },
        |s, _| s.distinct,
    )
}

/// Task-parallel incremental percentile (sorted-array state, §5.5).
pub fn percentile(
    values: &[i64],
    frames: &[(usize, usize)],
    p: f64,
    task_size: usize,
    parallel: bool,
) -> Vec<Option<i64>> {
    percentile_stats(values, frames, p, task_size, parallel).0
}

/// [`percentile`] with [`SlideStats`] re-warm counters.
pub fn percentile_stats(
    values: &[i64],
    frames: &[(usize, usize)],
    p: f64,
    task_size: usize,
    parallel: bool,
) -> (Vec<Option<i64>>, SlideStats) {
    task_parallel_slide_stats(
        frames,
        task_size,
        parallel,
        Vec::<i64>::new,
        |s, pos| {
            let idx = s.partition_point(|&v| v < values[pos]);
            s.insert(idx, values[pos]);
        },
        |s, pos| {
            let idx = s.partition_point(|&v| v < values[pos]);
            s.remove(idx);
        },
        |s, _| {
            if s.is_empty() {
                None
            } else {
                let j = ((p * s.len() as f64).ceil() as usize).clamp(1, s.len());
                Some(s[j - 1])
            }
        },
    )
}

/// Task-parallel order-statistic-tree percentile — the "order statistic
/// tree" line of Figures 10 and 11.
pub fn ostree_percentile(
    values: &[i64],
    frames: &[(usize, usize)],
    p: f64,
    task_size: usize,
    parallel: bool,
) -> Vec<Option<i64>> {
    ostree_percentile_stats(values, frames, p, task_size, parallel).0
}

/// [`ostree_percentile`] with [`SlideStats`] re-warm counters.
pub fn ostree_percentile_stats(
    values: &[i64],
    frames: &[(usize, usize)],
    p: f64,
    task_size: usize,
    parallel: bool,
) -> (Vec<Option<i64>>, SlideStats) {
    use crate::ostree::OrderStatisticTree;
    task_parallel_slide_stats(
        frames,
        task_size,
        parallel,
        OrderStatisticTree::new,
        |s, pos| s.insert(values[pos]),
        |s, pos| s.remove(values[pos]),
        |s, _| s.percentile_disc(p),
    )
}

/// Task-parallel order-statistic-tree windowed rank: the rank of `keys[i]`
/// among the frame rows (1 + count of strictly smaller frame elements).
pub fn ostree_rank(
    keys: &[i64],
    frames: &[(usize, usize)],
    task_size: usize,
    parallel: bool,
) -> Vec<usize> {
    use crate::ostree::OrderStatisticTree;
    task_parallel_slide(
        frames,
        task_size,
        parallel,
        OrderStatisticTree::new,
        |s, pos| s.insert(keys[pos]),
        |s, pos| s.remove(keys[pos]),
        |s, i| s.rank(keys[i]) + 1,
    )
}

/// Naive re-evaluation of a framed percentile (copy + sort per row) — the
/// "naive" line of the figures, on the same array-level interface.
pub fn naive_percentile(values: &[i64], frames: &[(usize, usize)], p: f64) -> Vec<Option<i64>> {
    frames
        .iter()
        .map(|&(a, b)| {
            if a >= b {
                return None;
            }
            let mut w: Vec<i64> = values[a..b].to_vec();
            w.sort_unstable();
            let j = ((p * w.len() as f64).ceil() as usize).clamp(1, w.len());
            Some(w[j - 1])
        })
        .collect()
}

/// Naive framed distinct count (fresh hash set per row).
pub fn naive_distinct_count(hashes: &[u64], frames: &[(usize, usize)]) -> Vec<usize> {
    frames
        .iter()
        .map(|&(a, b)| {
            let set: rustc_hash::FxHashSet<u64> = hashes[a..b.max(a)].iter().copied().collect();
            set.len()
        })
        .collect()
}

/// Naive framed rank (scan per row).
pub fn naive_rank(keys: &[i64], frames: &[(usize, usize)]) -> Vec<usize> {
    frames
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| keys[a..b.max(a)].iter().filter(|&&k| k < keys[i]).count() + 1)
        .collect()
}

/// Naive framed lead by value order (§4.6 with offset 1): sort the frame by
/// `(key, position)`, find the current row's rank, return the next entry's
/// key. `None` at the frame's top.
pub fn naive_lead(keys: &[i64], frames: &[(usize, usize)]) -> Vec<Option<i64>> {
    frames
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| {
            if a >= b {
                return None;
            }
            let mut w: Vec<(i64, usize)> = (a..b).map(|p| (keys[p], p)).collect();
            w.sort_unstable();
            let rn0 = w.partition_point(|&(k, p)| (k, p) < (keys[i], i));
            w.get(rn0 + 1).map(|&(k, _)| k)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sliding_frames(n: usize, w: usize) -> Vec<(usize, usize)> {
        (0..n).map(|i| (i.saturating_sub(w - 1), i + 1)).collect()
    }

    #[test]
    fn task_split_matches_serial() {
        let mut rng = StdRng::seed_from_u64(9);
        let vals: Vec<i64> = (0..500).map(|_| rng.gen_range(0..100)).collect();
        let frames = sliding_frames(vals.len(), 37);
        let serial = percentile(&vals, &frames, 0.5, usize::MAX, false);
        for ts in [1usize, 10, 100, 499, 500] {
            assert_eq!(percentile(&vals, &frames, 0.5, ts, false), serial, "ts={ts}");
            assert_eq!(percentile(&vals, &frames, 0.5, ts, true), serial, "par ts={ts}");
        }
    }

    #[test]
    fn distinct_count_tasks_match_naive() {
        let mut rng = StdRng::seed_from_u64(10);
        let vals: Vec<u64> = (0..400).map(|_| rng.gen_range(0..25)).collect();
        let frames = sliding_frames(vals.len(), 80);
        let expect = naive_distinct_count(&vals, &frames);
        assert_eq!(distinct_count(&vals, &frames, 64, true), expect);
        assert_eq!(crate::incremental::distinct_count(&vals, &frames), expect);
    }

    #[test]
    fn ostree_percentile_matches_naive() {
        let mut rng = StdRng::seed_from_u64(11);
        let vals: Vec<i64> = (0..300).map(|_| rng.gen_range(-40..40)).collect();
        let frames = sliding_frames(vals.len(), 55);
        for p in [0.1, 0.5, 0.99] {
            assert_eq!(
                ostree_percentile(&vals, &frames, p, 90, false),
                naive_percentile(&vals, &frames, p),
                "p={p}"
            );
        }
    }

    #[test]
    fn ostree_rank_matches_naive() {
        let mut rng = StdRng::seed_from_u64(12);
        let vals: Vec<i64> = (0..300).map(|_| rng.gen_range(0..30)).collect();
        let frames = sliding_frames(vals.len(), 44);
        assert_eq!(ostree_rank(&vals, &frames, 70, true), naive_rank(&vals, &frames));
    }

    #[test]
    fn naive_lead_finds_successor_by_value() {
        let keys = vec![10i64, 30, 20, 20];
        let frames = vec![(0, 4); 4];
        // Sorted by (key, pos): (10,0), (20,2), (20,3), (30,1).
        assert_eq!(naive_lead(&keys, &frames), vec![Some(20), None, Some(20), Some(30)]);
    }
}
