//! Incremental sliding-window algorithms of Wesley & Xu (PVLDB 2016).
//!
//! These maintain an aggregation state under `add`/`remove` as the frame
//! slides (§3.2): distinct counts with a hash multiset (O(1) per update —
//! O(n) total), percentiles with a sorted array (O(frame) per insert — the
//! O(n²) row of Table 1), and modes with counts-of-counts. Non-monotonic
//! frames make the same tuple enter and leave repeatedly, degrading all of
//! them (§6.5); the generic slide driver below handles that case by moving
//! both bounds in either direction.

use rustc_hash::FxHashMap;
use std::collections::BTreeSet;

/// Slides a state across `frames`, calling `out` per row. Frames may move
/// non-monotonically; both endpoints chase the target in either direction.
pub fn slide<S>(
    frames: &[(usize, usize)],
    state: &mut S,
    mut add: impl FnMut(&mut S, usize),
    mut remove: impl FnMut(&mut S, usize),
    mut out: impl FnMut(&mut S, usize),
) {
    let (mut cs, mut ce) = (0usize, 0usize);
    for (i, &(a, b)) in frames.iter().enumerate() {
        if a >= ce || b <= cs {
            // Disjoint target: drain and reposition.
            while cs < ce {
                remove(state, cs);
                cs += 1;
            }
            cs = a;
            ce = a;
        }
        while ce < b {
            add(state, ce);
            ce += 1;
        }
        while ce > b {
            ce -= 1;
            remove(state, ce);
        }
        while cs > a {
            cs -= 1;
            add(state, cs);
        }
        while cs < a {
            remove(state, cs);
            cs += 1;
        }
        out(state, i);
    }
}

/// Incremental windowed distinct count over pre-hashed values — O(n) total
/// for monotonic frames (Table 1 row 1).
pub fn distinct_count(hashes: &[u64], frames: &[(usize, usize)]) -> Vec<usize> {
    let mut out = vec![0usize; frames.len()];
    struct St {
        counts: FxHashMap<u64, u32>,
        distinct: usize,
    }
    let mut st = St { counts: FxHashMap::default(), distinct: 0 };
    slide(
        frames,
        &mut st,
        |s, p| {
            let c = s.counts.entry(hashes[p]).or_insert(0);
            if *c == 0 {
                s.distinct += 1;
            }
            *c += 1;
        },
        |s, p| {
            let c = s.counts.get_mut(&hashes[p]).expect("remove of absent value");
            *c -= 1;
            if *c == 0 {
                s.distinct -= 1;
            }
        },
        |s, i| out[i] = s.distinct,
    );
    out
}

/// Incremental windowed percentile with a sorted array — O(frame) per update,
/// the O(n²) percentile row of Table 1. Returns `None` for empty frames.
pub fn percentile(values: &[i64], frames: &[(usize, usize)], p: f64) -> Vec<Option<i64>> {
    let mut out = vec![None; frames.len()];
    let mut sorted: Vec<i64> = Vec::new();
    slide(
        frames,
        &mut sorted,
        |s, pos| {
            let idx = s.partition_point(|&v| v < values[pos]);
            s.insert(idx, values[pos]);
        },
        |s, pos| {
            let idx = s.partition_point(|&v| v < values[pos]);
            debug_assert_eq!(s[idx], values[pos]);
            s.remove(idx);
        },
        |s, i| {
            if !s.is_empty() {
                // PERCENTILE_DISC: j = ceil(p * s), 1-based.
                let j = ((p * s.len() as f64).ceil() as usize).clamp(1, s.len());
                out[i] = Some(s[j - 1]);
            }
        },
    );
    out
}

/// Incremental windowed mode (smallest among the most frequent values),
/// counts-of-counts bookkeeping as in Wesley & Xu. Returns `None` for empty
/// frames.
pub fn mode(values: &[i64], frames: &[(usize, usize)]) -> Vec<Option<i64>> {
    struct St {
        freq: FxHashMap<i64, usize>,
        buckets: FxHashMap<usize, BTreeSet<i64>>,
        max_count: usize,
    }
    impl St {
        fn retag(&mut self, v: i64, from: usize, to: usize) {
            if from > 0 {
                let b = self.buckets.get_mut(&from).unwrap();
                b.remove(&v);
                if b.is_empty() {
                    self.buckets.remove(&from);
                    if self.max_count == from {
                        self.max_count = to.max(if self.buckets.is_empty() {
                            0
                        } else {
                            // from and to differ by 1; the next candidate is
                            // from − 1 (still occupied) or to.
                            from - 1
                        });
                    }
                }
            }
            if to > 0 {
                self.buckets.entry(to).or_default().insert(v);
                self.max_count = self.max_count.max(to);
            }
        }
    }
    let mut st = St { freq: FxHashMap::default(), buckets: FxHashMap::default(), max_count: 0 };
    let mut out = vec![None; frames.len()];
    slide(
        frames,
        &mut st,
        |s, p| {
            let v = values[p];
            let c = s.freq.entry(v).or_insert(0);
            *c += 1;
            let to = *c;
            s.retag(v, to - 1, to);
        },
        |s, p| {
            let v = values[p];
            let c = s.freq.get_mut(&v).expect("remove of absent value");
            *c -= 1;
            let to = *c;
            if to == 0 {
                s.freq.remove(&v);
            }
            s.retag(v, to + 1, to);
        },
        |s, i| {
            if s.max_count > 0 {
                out[i] = s.buckets[&s.max_count].first().copied();
            }
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute_distinct(vals: &[u64], a: usize, b: usize) -> usize {
        let set: std::collections::HashSet<_> = vals[a..b].iter().collect();
        set.len()
    }

    fn brute_pct(vals: &[i64], a: usize, b: usize, p: f64) -> Option<i64> {
        let mut w: Vec<i64> = vals[a..b].to_vec();
        if w.is_empty() {
            return None;
        }
        w.sort_unstable();
        let j = ((p * w.len() as f64).ceil() as usize).clamp(1, w.len());
        Some(w[j - 1])
    }

    fn brute_mode(vals: &[i64], a: usize, b: usize) -> Option<i64> {
        if a >= b {
            return None;
        }
        let mut freq = std::collections::HashMap::new();
        for &v in &vals[a..b] {
            *freq.entry(v).or_insert(0usize) += 1;
        }
        let maxc = *freq.values().max().unwrap();
        freq.iter().filter(|(_, &c)| c == maxc).map(|(&v, _)| v).min()
    }

    fn sliding_frames(n: usize, w: usize) -> Vec<(usize, usize)> {
        (0..n).map(|i| (i.saturating_sub(w - 1), i + 1)).collect()
    }

    fn random_frames(rng: &mut StdRng, n: usize) -> Vec<(usize, usize)> {
        (0..n)
            .map(|_| {
                let a = rng.gen_range(0..=n);
                let b = rng.gen_range(a..=n);
                (a, b)
            })
            .collect()
    }

    #[test]
    fn distinct_count_sliding_matches_brute() {
        let mut rng = StdRng::seed_from_u64(1);
        let vals: Vec<u64> = (0..300).map(|_| rng.gen_range(0..20)).collect();
        for w in [1usize, 5, 50, 300] {
            let frames = sliding_frames(vals.len(), w);
            let got = distinct_count(&vals, &frames);
            for (i, &(a, b)) in frames.iter().enumerate() {
                assert_eq!(got[i], brute_distinct(&vals, a, b), "w={w} i={i}");
            }
        }
    }

    #[test]
    fn distinct_count_non_monotonic_frames() {
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<u64> = (0..150).map(|_| rng.gen_range(0..10)).collect();
        let frames = random_frames(&mut rng, vals.len());
        let got = distinct_count(&vals, &frames);
        for (i, &(a, b)) in frames.iter().enumerate() {
            assert_eq!(got[i], brute_distinct(&vals, a, b), "i={i} a={a} b={b}");
        }
    }

    #[test]
    fn percentile_sliding_and_random() {
        let mut rng = StdRng::seed_from_u64(3);
        let vals: Vec<i64> = (0..200).map(|_| rng.gen_range(-50..50)).collect();
        for p in [0.0, 0.5, 0.9, 1.0] {
            let frames = sliding_frames(vals.len(), 17);
            let got = percentile(&vals, &frames, p);
            for (i, &(a, b)) in frames.iter().enumerate() {
                assert_eq!(got[i], brute_pct(&vals, a, b, p), "p={p} i={i}");
            }
            let frames = random_frames(&mut rng, vals.len());
            let got = percentile(&vals, &frames, p);
            for (i, &(a, b)) in frames.iter().enumerate() {
                assert_eq!(got[i], brute_pct(&vals, a, b, p), "rand p={p} i={i}");
            }
        }
    }

    #[test]
    fn mode_sliding_and_random() {
        let mut rng = StdRng::seed_from_u64(4);
        let vals: Vec<i64> = (0..200).map(|_| rng.gen_range(0..8)).collect();
        let frames = sliding_frames(vals.len(), 23);
        let got = mode(&vals, &frames);
        for (i, &(a, b)) in frames.iter().enumerate() {
            assert_eq!(got[i], brute_mode(&vals, a, b), "i={i}");
        }
        let frames = random_frames(&mut rng, vals.len());
        let got = mode(&vals, &frames);
        for (i, &(a, b)) in frames.iter().enumerate() {
            assert_eq!(got[i], brute_mode(&vals, a, b), "rand i={i} a={a} b={b}");
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(distinct_count(&[], &[]).is_empty());
        assert!(percentile(&[], &[], 0.5).is_empty());
        let vals = vec![1i64, 2];
        let frames = vec![(1, 1), (0, 2)];
        assert_eq!(percentile(&vals, &frames, 0.5), vec![None, Some(1)]);
    }
}
