//! Memory-pressure cost shaping for strategy selection.
//!
//! The cost model of the strategy layer prices a merge sort tree by its
//! build and probe work, implicitly assuming the whole arena stays resident.
//! Under a memory budget that assumption breaks: a tree that exceeds its
//! share of the budget will be built out-of-core and/or parked and
//! re-faulted between probes, paying spill I/O the base model knows nothing
//! about. This module supplies the multiplicative penalty the window crate
//! folds into the MST cost terms when a budget is active, steering the
//! planner toward budget-friendly strategies (naive, incremental, segment
//! trees) for partitions whose tree would thrash the arena cache.
//!
//! The penalty is deliberately a pure function of two numbers — estimated
//! tree bytes and the budget — so it stays trivially testable and never
//! couples this dependency-free crate to engine types.

/// Largest multiplier [`mst_pressure_penalty`] returns. Spill I/O is slow
/// but not unboundedly so (sequential writes + segment-wise re-faults), so
/// the penalty saturates instead of growing without bound — an MST can still
/// win on a huge partition where every alternative is asymptotically worse.
pub const MAX_PRESSURE_PENALTY: f64 = 8.0;

/// Multiplier for the MST build/probe cost terms of a partition whose tree
/// is estimated at `estimated_bytes` under an optional `budget`.
///
/// * No budget: `1.0` (the base model is already right).
/// * Tree at most half the budget: `1.0` — it fits comfortably alongside
///   its siblings; no spilling is expected.
/// * Beyond half the budget the penalty ramps linearly with the
///   tree-to-budget ratio and saturates at [`MAX_PRESSURE_PENALTY`] (a tree
///   several times the budget is re-faulted roughly once per probe pass;
///   more overshoot cannot make a single pass slower than that).
/// * Zero budget: [`MAX_PRESSURE_PENALTY`] (everything thrashes).
#[must_use]
pub fn mst_pressure_penalty(estimated_bytes: u64, budget: Option<u64>) -> f64 {
    let Some(b) = budget else {
        return 1.0;
    };
    if b == 0 {
        return MAX_PRESSURE_PENALTY;
    }
    let ratio = estimated_bytes as f64 / b as f64;
    if ratio <= 0.5 {
        1.0
    } else {
        (1.0 + (ratio - 0.5) * 2.0).min(MAX_PRESSURE_PENALTY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_means_no_penalty() {
        assert_eq!(mst_pressure_penalty(u64::MAX, None), 1.0);
        assert_eq!(mst_pressure_penalty(0, None), 1.0);
    }

    #[test]
    fn comfortable_fit_is_free() {
        assert_eq!(mst_pressure_penalty(0, Some(1 << 20)), 1.0);
        assert_eq!(mst_pressure_penalty(1 << 19, Some(1 << 20)), 1.0);
    }

    #[test]
    fn penalty_ramps_and_saturates() {
        let b = Some(1u64 << 20);
        // At exactly the budget the tree competes with everything else
        // resident: ratio 1.0 → penalty 2.0.
        assert_eq!(mst_pressure_penalty(1 << 20, b), 2.0);
        let p_fits = mst_pressure_penalty(3 << 18, b); // ratio 0.75 → 1.5
        assert!(p_fits > 1.0 && p_fits < 2.0);
        // Far past the budget the penalty saturates.
        assert_eq!(mst_pressure_penalty(1 << 30, b), MAX_PRESSURE_PENALTY);
        assert_eq!(mst_pressure_penalty(123, Some(0)), MAX_PRESSURE_PENALTY);
    }

    #[test]
    fn penalty_is_monotone_in_tree_size() {
        let b = Some(4096u64);
        let mut last = 0.0f64;
        for bytes in (0..20).map(|i| i * 1024) {
            let p = mst_pressure_penalty(bytes, b);
            assert!(p >= last, "penalty regressed at {bytes} bytes");
            last = p;
        }
    }
}
