//! Pure per-partition evaluation kernels behind the engine's strategy layer.
//!
//! The paper's evaluation (§5, Table 1) compares the merge sort tree against
//! the classic per-partition algorithms: naive re-evaluation, Wesley &
//! Xu-style incremental sliding state, and order-statistic trees. This crate
//! holds those kernels in dependency-free form — plain arrays in, plain
//! arrays out, no engine types — so both the window executor (which picks a
//! strategy per partition) and the benchmark/baseline crates can share one
//! implementation.
//!
//! * [`incremental`] — sliding-state algorithms driven by a generic
//!   add/remove/out loop that tolerates non-monotonic frames.
//! * [`ostree`] — a counted B-tree multiset with O(log n) select/rank.
//! * [`taskpar`] — task-based parallel drivers that reproduce (and, via
//!   [`taskpar::SlideStats`], measure) the re-warm overhead of §3.2.
//! * [`memory`] — the memory-pressure penalty folded into MST cost terms
//!   when execution runs under a memory budget.
//!
//! ```
//! use holistic_strategies::incremental;
//!
//! // A 3-wide sliding window over 5 values.
//! let frames: Vec<(usize, usize)> = (0..5usize).map(|i| (i.saturating_sub(2), i + 1)).collect();
//! let hashes = [1u64, 2, 1, 1, 3];
//! assert_eq!(incremental::distinct_count(&hashes, &frames), vec![1, 2, 2, 2, 2]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod incremental;
pub mod memory;
pub mod ostree;
pub mod taskpar;
