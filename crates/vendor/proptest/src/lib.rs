//! A self-contained stand-in for the `proptest` API subset this workspace's
//! tests use: the `proptest!` macro with `#![proptest_config(...)]`,
//! `name in strategy` arguments, integer range strategies, `any::<T>()`,
//! tuple strategies, `prop::collection::vec`, `prop::option::of`,
//! `Strategy::prop_map`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Cases are generated from a deterministic RNG seeded by the test name and
//! case index, so failures reproduce across runs of the same build. There is
//! no shrinking: a failing case panics with the assertion message directly
//! (the generated inputs are deterministic, so the case is re-runnable under
//! a debugger by its index).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies. Deterministic per (test name, case index).
pub type TestRng = StdRng;

/// Builds the RNG for one test case.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A generator of random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Full-domain strategy marker returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generates any value of `T` (uniform over the domain).
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Element-count specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::*;

    /// Strategy for `Option<T>`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy produced by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Path-style access mirroring upstream's `prop::...` convention.
pub mod prop {
    pub use crate::{collection, option};
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_case_rng = $crate::case_rng(stringify!($name), case);
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut proptest_case_rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let s = prop::collection::vec(0i64..100, 5..10);
        let mut r1 = crate::case_rng("t", 3);
        let mut r2 = crate::case_rng("t", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn sizes_and_ranges_respected() {
        let s = prop::collection::vec(prop::option::of(-5i64..5), 2..8);
        let mut rng = crate::case_rng("sizes", 0);
        let mut saw_none = false;
        for case in 0..200 {
            rng = crate::case_rng("sizes", case);
            let v = s.generate(&mut rng);
            assert!((2..8).contains(&v.len()));
            for x in v {
                match x {
                    None => saw_none = true,
                    Some(k) => assert!((-5..5).contains(&k)),
                }
            }
        }
        assert!(saw_none);
    }

    #[test]
    fn prop_map_applies() {
        let s = (1usize..=4, 1usize..=4).prop_map(|(a, b)| a * 10 + b);
        let mut rng = crate::case_rng("map", 1);
        let v = s.generate(&mut rng);
        assert!((11..=44).contains(&v));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: attrs, multiple args, trailing comma.
        #[test]
        fn macro_smoke(
            xs in prop::collection::vec(0u32..50, 0..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 20);
            if flag {
                prop_assert_eq!(xs.iter().filter(|&&x| x >= 50).count(), 0);
            }
        }

        #[test]
        fn macro_single_line(n in 1usize..10) { prop_assert!(n >= 1 && n < 10); }
    }
}
