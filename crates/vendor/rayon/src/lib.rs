//! A self-contained, dependency-free stand-in for the `rayon` data-parallel
//! API subset this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the exact parallel-iterator surface it needs: `par_iter`, `par_iter_mut`,
//! `par_chunks`, `par_chunks_mut`, `into_par_iter` (ranges and vectors),
//! `map`/`filter_map`/`enumerate`/`zip`/`for_each`/`collect`, and the
//! unstable parallel sorts. Execution is genuinely parallel via
//! [`std::thread::scope`]: an operation splits its index space into one
//! contiguous part per available thread and joins the scoped workers.
//!
//! Semantics match rayon where it matters for this codebase: item order is
//! preserved by `collect`, splits are deterministic, and all closures must be
//! `Send + Sync`. The scheduling is simpler (static partitioning, no work
//! stealing, no global pool), which is fine for the coarse-grained operations
//! the engine guards behind size thresholds.

use std::cmp::Ordering;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

/// Number of worker threads parallel operations fan out to.
///
/// Honours `RAYON_NUM_THREADS` when set (like rayon's global pool), falling
/// back to [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// The parallel-iterator trait: a splittable, exact-ish-length producer.
///
/// `len_hint` is exact for every producer except [`FilterMap`], where it is
/// an upper bound (order-preserving concatenation keeps `collect` correct).
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;
    /// The sequential iterator a part degrades to.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Upper bound on the number of items (exact for indexed producers).
    fn len_hint(&self) -> usize;
    /// Splits the underlying index space at `index` (`0 <= index <= len`).
    fn split_at(self, index: usize) -> (Self, Self);
    /// Degrades to sequential iteration.
    fn into_seq(self) -> Self::SeqIter;

    /// Maps each item through `f`.
    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { base: self, f: Arc::new(f) }
    }

    /// Maps and filters in one pass.
    fn filter_map<R: Send, F>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Send + Sync,
    {
        FilterMap { base: self, f: Arc::new(f) }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self, offset: 0 }
    }

    /// Zips with another indexed parallel iterator.
    fn zip<B>(self, other: B) -> Zip<Self, B::Iter>
    where
        B: IntoParallelIterator,
    {
        Zip { a: self, b: other.into_par_iter() }
    }

    /// Runs `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_parts(self, &|it: Self::SeqIter| {
            for x in it {
                f(x);
            }
        });
    }

    /// Collects into `C`, preserving item order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        let parts = run_parts(self, &|it: Self::SeqIter| it.collect::<Vec<_>>());
        C::from_par_parts(parts)
    }
}

/// Conversion into a [`ParallelIterator`] (mirrors rayon's trait).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Performs the conversion.
    fn into_par_iter(self) -> Self::Iter;
}

/// Collection from ordered per-thread parts (mirrors rayon's
/// `FromParallelIterator`).
pub trait FromParallelIterator<T>: Sized {
    /// Assembles the final collection from in-order parts.
    fn from_par_parts(parts: Vec<Vec<T>>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_parts(parts: Vec<Vec<T>>) -> Self {
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        out
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_parts(parts: Vec<Vec<Result<T, E>>>) -> Self {
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            for r in p {
                out.push(r?);
            }
        }
        Ok(out)
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<(), E>
where
    T: Send,
{
    fn from_par_parts(parts: Vec<Vec<Result<T, E>>>) -> Self {
        for p in parts {
            for r in p {
                r?;
            }
        }
        Ok(())
    }
}

/// Splits `p` into up to `current_num_threads()` parts and runs `f` over each
/// part's sequential iterator on a scoped thread, returning per-part results
/// in order.
fn run_parts<P, R, F>(p: P, f: &F) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::SeqIter) -> R + Sync,
{
    let n = p.len_hint();
    let k = current_num_threads().min(n.max(1));
    if k <= 1 {
        return vec![f(p.into_seq())];
    }
    // Carve `p` into k contiguous parts of near-equal index width.
    let mut parts = Vec::with_capacity(k);
    let mut rest = p;
    let mut start = 0usize;
    for i in 1..k {
        let cut = i * n / k;
        let (head, tail) = rest.split_at(cut - start);
        parts.push(head);
        rest = tail;
        start = cut;
    }
    parts.push(rest);
    std::thread::scope(|s| {
        let handles: Vec<_> =
            parts.into_iter().map(|part| s.spawn(move || f(part.into_seq()))).collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    })
}

// ---------------------------------------------------------------- producers

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'a, T>(&'a [T]);

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;
    fn len_hint(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(index);
        (SliceParIter(a), SliceParIter(b))
    }
    fn into_seq(self) -> Self::SeqIter {
        self.0.iter()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceParIterMut<'a, T>(&'a mut [T]);

impl<'a, T: Send> ParallelIterator for SliceParIterMut<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;
    fn len_hint(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at_mut(index);
        (SliceParIterMut(a), SliceParIterMut(b))
    }
    fn into_seq(self) -> Self::SeqIter {
        self.0.iter_mut()
    }
}

/// Parallel chunks of `&[T]`.
pub struct ChunksPar<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksPar<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Chunks<'a, T>;
    fn len_hint(&self) -> usize {
        self.slice.len().div_ceil(self.size.max(1))
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let cut = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(cut);
        (ChunksPar { slice: a, size: self.size }, ChunksPar { slice: b, size: self.size })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks(self.size.max(1))
    }
}

/// Parallel chunks of `&mut [T]`.
pub struct ChunksMutPar<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMutPar<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;
    fn len_hint(&self) -> usize {
        self.slice.len().div_ceil(self.size.max(1))
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let cut = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(cut);
        (ChunksMutPar { slice: a, size: self.size }, ChunksMutPar { slice: b, size: self.size })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.size.max(1))
    }
}

/// Parallel iterator over a `usize` range.
pub struct RangePar(Range<usize>);

impl ParallelIterator for RangePar {
    type Item = usize;
    type SeqIter = Range<usize>;
    fn len_hint(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (self.0.start + index).min(self.0.end);
        (RangePar(self.0.start..mid), RangePar(mid..self.0.end))
    }
    fn into_seq(self) -> Self::SeqIter {
        self.0
    }
}

/// Parallel iterator consuming a `Vec<T>`.
pub struct VecPar<T>(Vec<T>);

impl<T: Send> ParallelIterator for VecPar<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;
    fn len_hint(&self) -> usize {
        self.0.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.0.split_off(index.min(self.0.len()));
        (self, VecPar(tail))
    }
    fn into_seq(self) -> Self::SeqIter {
        self.0.into_iter()
    }
}

// -------------------------------------------------------------- combinators

/// Mapping combinator.
pub struct Map<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential side of [`Map`].
pub struct MapSeq<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, F, R> Iterator for MapSeq<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.inner.next().map(|x| (self.f)(x))
    }
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Send + Sync,
{
    type Item = R;
    type SeqIter = MapSeq<P::SeqIter, F>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (Map { base: a, f: self.f.clone() }, Map { base: b, f: self.f })
    }
    fn into_seq(self) -> Self::SeqIter {
        MapSeq { inner: self.base.into_seq(), f: self.f }
    }
}

/// Filter-mapping combinator (length hint becomes an upper bound).
pub struct FilterMap<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential side of [`FilterMap`].
pub struct FilterMapSeq<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, F, R> Iterator for FilterMapSeq<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> Option<R>,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        for x in self.inner.by_ref() {
            if let Some(r) = (self.f)(x) {
                return Some(r);
            }
        }
        None
    }
}

impl<P, F, R> ParallelIterator for FilterMap<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> Option<R> + Send + Sync,
{
    type Item = R;
    type SeqIter = FilterMapSeq<P::SeqIter, F>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (FilterMap { base: a, f: self.f.clone() }, FilterMap { base: b, f: self.f })
    }
    fn into_seq(self) -> Self::SeqIter {
        FilterMapSeq { inner: self.base.into_seq(), f: self.f }
    }
}

/// Enumerating combinator.
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

/// Sequential side of [`Enumerate`].
pub struct EnumerateSeq<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let x = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, x))
    }
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type SeqIter = EnumerateSeq<P::SeqIter>;
    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Enumerate { base: a, offset: self.offset },
            Enumerate { base: b, offset: self.offset + index },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        EnumerateSeq { inner: self.base.into_seq(), next: self.offset }
    }
}

/// Zipping combinator over two indexed producers.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;
    fn len_hint(&self) -> usize {
        self.a.len_hint().min(self.b.len_hint())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

// -------------------------------------------- IntoParallelIterator wiring

macro_rules! impl_into_par_identity {
    ($($ty:ident < $($gen:ident),* >),* $(,)?) => {$(
        impl<$($gen),*> IntoParallelIterator for $ty<$($gen),*>
        where
            $ty<$($gen),*>: ParallelIterator,
        {
            type Item = <$ty<$($gen),*> as ParallelIterator>::Item;
            type Iter = $ty<$($gen),*>;
            fn into_par_iter(self) -> Self::Iter {
                self
            }
        }
    )*};
}

impl_into_par_identity!(
    Map<P, F>,
    FilterMap<P, F>,
    Enumerate<P>,
    Zip<A, B>,
    VecPar<T>,
);

impl<'a, T: Sync> IntoParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    type Iter = Self;
    fn into_par_iter(self) -> Self {
        self
    }
}

impl<'a, T: Send> IntoParallelIterator for SliceParIterMut<'a, T> {
    type Item = &'a mut T;
    type Iter = Self;
    fn into_par_iter(self) -> Self {
        self
    }
}

impl<'a, T: Sync> IntoParallelIterator for ChunksPar<'a, T> {
    type Item = &'a [T];
    type Iter = Self;
    fn into_par_iter(self) -> Self {
        self
    }
}

impl<'a, T: Send> IntoParallelIterator for ChunksMutPar<'a, T> {
    type Item = &'a mut [T];
    type Iter = Self;
    fn into_par_iter(self) -> Self {
        self
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangePar;
    fn into_par_iter(self) -> RangePar {
        RangePar(self)
    }
}

impl IntoParallelIterator for RangePar {
    type Item = usize;
    type Iter = RangePar;
    fn into_par_iter(self) -> RangePar {
        self
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecPar<T>;
    fn into_par_iter(self) -> VecPar<T> {
        VecPar(self)
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter(self)
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter(self)
    }
}

// ------------------------------------------------------------ slice methods

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over references.
    fn par_iter(&self) -> SliceParIter<'_, T>;
    /// Parallel iterator over chunks of `size`.
    fn par_chunks(&self, size: usize) -> ChunksPar<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceParIter<'_, T> {
        SliceParIter(self)
    }
    fn par_chunks(&self, size: usize) -> ChunksPar<'_, T> {
        ChunksPar { slice: self, size }
    }
}

/// `par_iter_mut` / `par_chunks_mut` / parallel sorts on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T>;
    /// Parallel iterator over mutable chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMutPar<'_, T>;
    /// Parallel unstable sort by `Ord`.
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Copy + Sync,
    {
        self.par_sort_unstable_by(|a, b| a.cmp(b));
    }
    /// Parallel unstable sort by comparator.
    ///
    /// Unlike rayon, the vendored merge needs `T: Copy + Sync` (all call
    /// sites sort plain index/key tuples).
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        T: Copy + Sync,
        F: Fn(&T, &T) -> Ordering + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T> {
        SliceParIterMut(self)
    }
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMutPar<'_, T> {
        ChunksMutPar { slice: self, size }
    }
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        T: Copy + Sync,
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_merge_sort(self, &cmp);
    }
}

/// Chunked parallel merge sort: sort `threads` runs concurrently, then merge
/// adjacent runs pairwise (each round's merges run in parallel).
fn par_merge_sort<T, F>(data: &mut [T], cmp: &F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = data.len();
    let threads = current_num_threads();
    if threads <= 1 || n < 4096 {
        data.sort_unstable_by(cmp);
        return;
    }
    let chunk = n.div_ceil(threads);
    let mut bounds: Vec<usize> = (0..n).step_by(chunk).collect();
    bounds.push(n);
    std::thread::scope(|s| {
        let mut rest = &mut *data;
        let mut handles = Vec::new();
        for w in bounds.windows(2) {
            let (head, tail) = rest.split_at_mut(w[1] - w[0]);
            handles.push(s.spawn(move || head.sort_unstable_by(cmp)));
            rest = tail;
        }
        for h in handles {
            h.join().expect("sort worker panicked");
        }
    });
    // Pairwise merge rounds through a scratch buffer.
    let mut scratch: Vec<T> = data.to_vec();
    let mut src_is_data = true;
    while bounds.len() > 2 {
        let mut next_bounds = Vec::with_capacity(bounds.len() / 2 + 1);
        next_bounds.push(0);
        {
            let (src, dst): (&[T], &mut [T]) =
                if src_is_data { (&*data, &mut scratch[..]) } else { (&scratch[..], &mut *data) };
            std::thread::scope(|s| {
                let mut rest = dst;
                let mut offset = 0usize;
                let mut i = 0;
                while i + 1 < bounds.len() {
                    let lo = bounds[i];
                    let mid = bounds[i + 1];
                    let hi = if i + 2 < bounds.len() { bounds[i + 2] } else { mid };
                    let width = hi - lo;
                    let (out, tail) = rest.split_at_mut(width);
                    debug_assert_eq!(offset, lo);
                    let a = &src[lo..mid];
                    let b = &src[mid..hi];
                    s.spawn(move || merge_into(a, b, out, cmp));
                    rest = tail;
                    offset += width;
                    next_bounds.push(hi);
                    i += 2;
                }
            });
        }
        src_is_data = !src_is_data;
        bounds = next_bounds;
    }
    if !src_is_data {
        data.copy_from_slice(&scratch);
    }
}

fn merge_into<T: Copy, F: Fn(&T, &T) -> Ordering>(a: &[T], b: &[T], out: &mut [T], cmp: &F) {
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || cmp(&a[i], &b[j]) != Ordering::Greater) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join worker panicked"))
    })
}

/// The glob-import surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..10_000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_result_short_circuits() {
        let ok: Result<Vec<usize>, String> =
            (0..100).into_par_iter().map(Ok::<usize, String>).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<usize>, String> = (0..100)
            .into_par_iter()
            .map(|i| if i == 57 { Err("boom".to_string()) } else { Ok(i) })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn filter_map_keeps_order() {
        let v: Vec<usize> =
            (0..1000).into_par_iter().filter_map(|i| (i % 3 == 0).then_some(i)).collect();
        assert_eq!(v, (0..1000).filter(|i| i % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_enumerate() {
        let mut data = vec![0usize; 1000];
        data.par_chunks_mut(100).enumerate().for_each(|(r, c)| {
            for x in c.iter_mut() {
                *x = r;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[999], 9);
        assert_eq!(data[500], 5);
    }

    #[test]
    fn zip_mut_with_shared() {
        let mut out = vec![0i64; 5000];
        let input: Vec<i64> = (0..5000).collect();
        out.par_iter_mut().zip(input.par_iter()).for_each(|(o, &v)| *o = v * 3);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as i64 * 3));
    }

    #[test]
    fn par_sort_matches_std() {
        let mut a: Vec<usize> = (0..50_000).map(|i| (i * 2654435761) % 100_000).collect();
        let mut b = a.clone();
        a.par_sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        let mut c: Vec<usize> = (0..10_000).map(|i| (i * 48271) % 7919).collect();
        let mut d = c.clone();
        c.par_sort_unstable_by(|x, y| y.cmp(x));
        d.sort_unstable_by(|x, y| y.cmp(x));
        assert_eq!(c, d);
    }

    #[test]
    fn vec_into_par_iter() {
        let tasks: Vec<usize> = (0..257).collect();
        let out: Vec<usize> = tasks.into_par_iter().map(|t| t + 1).collect();
        assert_eq!(out.len(), 257);
        assert_eq!(out[0], 1);
        assert_eq!(out[256], 257);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
