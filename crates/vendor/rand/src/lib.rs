//! A self-contained, dependency-free stand-in for the `rand` 0.8 API subset
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen, gen_range, gen_bool}` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed, statistically solid for test-data generation, and *not* meant to
//! be value-compatible with upstream `rand` (tests in this workspace only
//! rely on determinism within a build, never on exact sequences).

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling trait: everything the workspace draws from an RNG.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self.as_dyn())
    }

    /// Samples a value of `T` from its full domain (ints) or `[0, 1)`
    /// (floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.as_dyn())
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample(self.as_dyn()) < p
    }

    /// Object-safe view used internally by the sampling helpers.
    fn as_dyn(&mut self) -> &mut dyn RngCore;
}

/// Object-safe raw-bits source.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// xoshiro256++ — the standard generator of this vendored crate.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn next(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as the xoshiro authors recommend.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256 { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl Rng for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
    fn as_dyn(&mut self) -> &mut dyn RngCore {
        self
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator.
    pub type StdRng = super::Xoshiro256;
    /// Alias kept for API compatibility.
    pub type SmallRng = super::Xoshiro256;
}

/// Uniform sampling from a range type.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Full-domain (ints) / unit-interval (floats) sampling.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

fn uniform_u64(rng: &mut dyn RngCore, span: u64) -> u64 {
    // Lemire-style rejection-free-enough sampling: widening multiply keeps
    // bias below 2^-64, irrelevant for test-data generation.
    debug_assert!(span > 0);
    let x = rng.next_u64();
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64 range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_sampling!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The glob-import surface, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i64 = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&x));
            let y: usize = rng.gen_range(3..=9);
            assert!((3..=9).contains(&y));
            let f: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut lo_hi = (false, false);
        for _ in 0..1000 {
            match rng.gen_range(1u32..=2) {
                1 => lo_hi.0 = true,
                2 => lo_hi.1 = true,
                _ => unreachable!(),
            }
        }
        assert!(lo_hi.0 && lo_hi.1);
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
    }

    #[test]
    fn gen_full_domain() {
        let mut rng = StdRng::seed_from_u64(13);
        let _: i32 = rng.gen();
        let b: Vec<bool> = (0..100).map(|_| rng.gen::<bool>()).collect();
        assert!(b.iter().any(|&x| x) && b.iter().any(|&x| !x));
    }
}
