//! A self-contained stand-in for the `criterion` API subset this workspace's
//! benches use: `Criterion::benchmark_group`, `sample_size`,
//! `measurement_time`, `throughput`, `bench_function`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Measurement is deliberately simple — warm up briefly, run the closure in
//! batches until the measurement budget is spent, report the median batch
//! time — which is plenty for the relative comparisons these benches make.
//! No statistics engine, plotting, or baseline storage.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter (typically the input size).
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        let mut label = name.into();
        let _ = write!(label, "/{param}");
        BenchmarkId { label }
    }

    /// Parameter-only id.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId { label: param.to_string() }
    }
}

/// Anything convertible into a benchmark id (strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display label.
    fn label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn label(self) -> String {
        self
    }
}

/// Throughput annotation for rate reporting.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.label();
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        // Warm-up: one sample, also calibrates the per-iteration cost.
        f(&mut b);
        let warm_per_iter =
            if b.iters > 0 { b.elapsed.as_secs_f64() / b.iters as f64 } else { 0.0 };
        let budget = self.measurement_time.as_secs_f64();
        let samples = self.sample_size;
        // Aim the whole sample loop at the measurement budget.
        let target_per_sample = budget / samples as f64;
        let iters_per_sample = if warm_per_iter > 0.0 {
            ((target_per_sample / warm_per_iter).round() as u64).clamp(1, 1_000_000)
        } else {
            1
        };
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        let started = Instant::now();
        for _ in 0..samples {
            let mut s = Bencher { elapsed: Duration::ZERO, iters: 0 };
            for _ in 0..iters_per_sample {
                f(&mut s);
            }
            if s.iters > 0 {
                times.push(s.elapsed.as_secs_f64() / s.iters as f64);
            }
            if started.elapsed().as_secs_f64() > budget * 2.0 {
                break; // keep slow benches from overshooting wildly
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times.get(times.len() / 2).copied().unwrap_or(0.0);
        let mut line = format!("{}/{label}: {}", self.name, fmt_time(median));
        if let Some(Throughput::Elements(n)) = self.throughput {
            if median > 0.0 {
                let _ = write!(line, "  ({:.3} Melem/s)", n as f64 / median / 1e6);
            }
        }
        eprintln!("{line}");
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated runs of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        self.elapsed += t0.elapsed();
        self.iters += 1;
    }
}

/// Opaque value barrier, re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(30));
        g.throughput(Throughput::Elements(10));
        g.bench_function(BenchmarkId::new("sum", 10), |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
