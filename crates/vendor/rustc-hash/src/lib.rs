//! A self-contained stand-in for `rustc-hash`: the Fx multiply-rotate hash
//! with the `FxHashMap`/`FxHashSet` aliases, vendored because the build
//! container has no crates.io access.
//!
//! The mixing function follows the same word-at-a-time
//! multiply-and-rotate scheme as upstream FxHash (not bit-for-bit identical
//! across versions; nothing in this workspace persists hashes).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Fast non-cryptographic hasher for hot hash maps.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low bits are usable as table indices.
        let mut h = self.hash;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51afd7ed558ccd);
        h ^= h >> 33;
        h
    }
}

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// The default build-hasher, mirroring upstream's export.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m["a"] + m["b"], 3);
        let s: FxHashSet<u64> = (0..1000).map(|i| i % 97).collect();
        assert_eq!(s.len(), 97);
    }
}
