//! # holistic-tpch — deterministic TPC-H-style workload generators
//!
//! The paper evaluates on the TPC-H `lineitem` table "because it resembles
//! real-world data sets and is widely available" (§6.1). This crate stands in
//! for dbgen: a seeded, deterministic generator producing the columns the
//! benchmark queries touch, with matching types, value domains and
//! duplication rates (dates spanning 1992–1998, ~200 000·SF part keys, cent
//! prices derived from quantities). Absolute values differ from dbgen's, but
//! every property the algorithms are sensitive to — cardinalities, duplicate
//! frequencies, orderings — is preserved.
//!
//! Scenario tables for the paper's motivating examples (§1, §2.2, §2.4) are
//! also provided: TPC-C results for the leaderboard query, stock limit orders
//! for non-monotonic frames, and an orders stream for monthly-active users.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lineitem;
pub mod scenarios;

pub use lineitem::{lineitem, Lineitem, SF_ROWS};
pub use scenarios::{orders_stream, stock_orders, tpcc_results};
