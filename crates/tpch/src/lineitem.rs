//! The `lineitem` generator.

use holistic_window::value::ymd_to_days;
use holistic_window::{Column, Table};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Rows per TPC-H scale factor (lineitem has ~6 M rows at SF 1).
pub const SF_ROWS: usize = 6_000_000;

/// Columnar lineitem data (the columns the paper's queries touch).
///
/// Dates are days since the epoch; prices are integer cents, matching the
/// paper's observation (§5.1) that SQL decimals are fixed-width integers.
pub struct Lineitem {
    /// Order key, ascending with 1–7 lines per order.
    pub orderkey: Vec<i64>,
    /// Part key, uniform over ~200 000·SF values (the distinct-count column).
    pub partkey: Vec<i64>,
    /// Supplier key, uniform over ~10 000·SF values.
    pub suppkey: Vec<i64>,
    /// Quantity, uniform 1–50.
    pub quantity: Vec<i64>,
    /// Extended price in cents: quantity × part price (the median column).
    pub extendedprice: Vec<i64>,
    /// Discount in basis points, 0–1000.
    pub discount: Vec<i64>,
    /// Ship date: uniform over 1992-01-02 … 1998-10-31.
    pub shipdate: Vec<i32>,
    /// Commit date: ship date ± 45 days.
    pub commitdate: Vec<i32>,
    /// Receipt date: ship date + 1 … 30 days (the delivery-time column).
    pub receiptdate: Vec<i32>,
    /// Return flag: "R", "A" or "N".
    pub returnflag: Vec<&'static str>,
    /// Line status: "O" or "F".
    pub linestatus: Vec<&'static str>,
}

impl Lineitem {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.shipdate.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.shipdate.is_empty()
    }

    /// Materializes as an engine [`Table`].
    pub fn to_table(&self) -> Table {
        Table::new(vec![
            ("l_orderkey", Column::ints(self.orderkey.clone())),
            ("l_partkey", Column::ints(self.partkey.clone())),
            ("l_suppkey", Column::ints(self.suppkey.clone())),
            ("l_quantity", Column::ints(self.quantity.clone())),
            ("l_extendedprice", Column::ints(self.extendedprice.clone())),
            ("l_discount", Column::ints(self.discount.clone())),
            ("l_shipdate", Column::dates(self.shipdate.clone())),
            ("l_commitdate", Column::dates(self.commitdate.clone())),
            ("l_receiptdate", Column::dates(self.receiptdate.clone())),
            ("l_returnflag", Column::strs(self.returnflag.clone())),
            ("l_linestatus", Column::strs(self.linestatus.clone())),
        ])
        .expect("columns equally long")
    }
}

/// Generates `n` lineitem rows deterministically from `seed`.
///
/// The part-key domain scales with `n` like dbgen's (200 000 parts per 6 M
/// lines), keeping duplicate rates — which drive distinct-count behaviour —
/// faithful at every sample size.
pub fn lineitem(n: usize, seed: u64) -> Lineitem {
    let mut rng = StdRng::seed_from_u64(seed);
    let date_lo = ymd_to_days(1992, 1, 2);
    let date_hi = ymd_to_days(1998, 10, 31);
    let parts = ((n as f64 / SF_ROWS as f64) * 200_000.0).ceil().max(200.0) as i64;
    let supps = ((n as f64 / SF_ROWS as f64) * 10_000.0).ceil().max(10.0) as i64;

    let mut li = Lineitem {
        orderkey: Vec::with_capacity(n),
        partkey: Vec::with_capacity(n),
        suppkey: Vec::with_capacity(n),
        quantity: Vec::with_capacity(n),
        extendedprice: Vec::with_capacity(n),
        discount: Vec::with_capacity(n),
        shipdate: Vec::with_capacity(n),
        commitdate: Vec::with_capacity(n),
        receiptdate: Vec::with_capacity(n),
        returnflag: Vec::with_capacity(n),
        linestatus: Vec::with_capacity(n),
    };
    let mut orderkey = 1i64;
    let mut lines_left = 0u32;
    for _ in 0..n {
        if lines_left == 0 {
            orderkey += rng.gen_range(1i64..=3);
            lines_left = rng.gen_range(1..=7);
        }
        lines_left -= 1;
        let partkey = rng.gen_range(1..=parts);
        let quantity = rng.gen_range(1..=50i64);
        // dbgen: retail price ≈ 90 000 + key-dependent spread, in cents.
        let partprice = 90_000 + (partkey % 20_001) + 100 * (partkey % 1_000);
        let shipdate = rng.gen_range(date_lo..=date_hi);
        li.orderkey.push(orderkey);
        li.partkey.push(partkey);
        li.suppkey.push(rng.gen_range(1..=supps));
        li.quantity.push(quantity);
        li.extendedprice.push(quantity * partprice);
        li.discount.push(rng.gen_range(0..=1000));
        li.shipdate.push(shipdate);
        li.commitdate.push(shipdate + rng.gen_range(-45..=45));
        li.receiptdate.push(shipdate + rng.gen_range(1..=30));
        li.returnflag.push(["R", "A", "N"][rng.gen_range(0usize..3)]);
        li.linestatus.push(["O", "F"][rng.gen_range(0usize..2)]);
    }
    li
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = lineitem(1_000, 42);
        let b = lineitem(1_000, 42);
        assert_eq!(a.extendedprice, b.extendedprice);
        assert_eq!(a.shipdate, b.shipdate);
        let c = lineitem(1_000, 43);
        assert_ne!(a.extendedprice, c.extendedprice);
    }

    #[test]
    fn domains_are_sane() {
        let li = lineitem(5_000, 1);
        assert_eq!(li.len(), 5_000);
        assert!(li.quantity.iter().all(|&q| (1..=50).contains(&q)));
        assert!(li.receiptdate.iter().zip(&li.shipdate).all(|(&r, &s)| r > s && r <= s + 30));
        assert!(li.extendedprice.iter().all(|&p| p > 0));
        assert!(li.orderkey.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn partkey_duplication_scales() {
        // Small samples must still have duplicate part keys (the distinct
        // count workload relies on it).
        let li = lineitem(2_000, 7);
        let distinct: std::collections::HashSet<_> = li.partkey.iter().collect();
        assert!(distinct.len() < li.len(), "part keys should repeat");
        assert!(distinct.len() > li.len() / 100, "but not collapse");
    }

    #[test]
    fn to_table_roundtrip() {
        let li = lineitem(100, 3);
        let t = li.to_table();
        assert_eq!(t.num_rows(), 100);
        assert_eq!(t.num_columns(), 11);
        assert_eq!(
            t.column("l_extendedprice").unwrap().get(0).as_i64().unwrap(),
            li.extendedprice[0]
        );
    }

    #[test]
    fn empty_generation() {
        let li = lineitem(0, 1);
        assert!(li.is_empty());
        assert_eq!(li.to_table().num_rows(), 0);
    }
}
