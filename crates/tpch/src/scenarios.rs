//! Scenario tables for the paper's motivating examples.

use holistic_window::value::ymd_to_days;
use holistic_window::{Column, Table};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The `tpcc_results` leaderboard of §2.4: database systems submitting TPC-C
/// results over the years, with throughput trending upward so that ranks and
/// leaders actually change over time.
pub fn tpcc_results(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let vendors = [
        "HyperDB",
        "UmbraSys",
        "QuackDB",
        "ElephantSQL",
        "SnowOwl",
        "OrcaBase",
        "TinyTuple",
        "MorselMachine",
    ];
    let mut dbsystem = Vec::with_capacity(n);
    let mut tps = Vec::with_capacity(n);
    let mut submission_date = Vec::with_capacity(n);
    let start = ymd_to_days(2000, 1, 1);
    let mut day = start;
    for i in 0..n {
        day += rng.gen_range(20..120);
        let vendor = vendors[rng.gen_range(0..vendors.len())];
        // Throughput grows ~20% per simulated year, with vendor noise.
        let years = (day - start) as f64 / 365.0;
        let base = 10_000.0 * 1.2f64.powf(years);
        dbsystem.push(vendor);
        tps.push((base * rng.gen_range(0.5..1.6)) as i64 + i as i64 % 7);
        submission_date.push(day);
    }
    Table::new(vec![
        ("dbsystem", Column::strs(dbsystem)),
        ("tps", Column::ints(tps)),
        ("submission_date", Column::dates(submission_date)),
    ])
    .expect("columns equally long")
}

/// The `stock_orders` table of §2.2: limit orders with per-order validity
/// intervals (`good_for`), driving non-monotonic, per-row frame bounds.
pub fn stock_orders(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut placement_time = Vec::with_capacity(n);
    let mut price = Vec::with_capacity(n);
    let mut good_for = Vec::with_capacity(n);
    let mut t = 0i64;
    let mut p = 10_000i64;
    for _ in 0..n {
        t += rng.gen_range(1i64..30);
        // Random-walk price in cents.
        p = (p + rng.gen_range(-150i64..=150)).max(100);
        placement_time.push(t);
        price.push(p);
        good_for.push(rng.gen_range(10..600i64));
    }
    Table::new(vec![
        ("placement_time", Column::ints(placement_time)),
        ("price", Column::ints(price)),
        ("good_for", Column::ints(good_for)),
    ])
    .expect("columns equally long")
}

/// An orders stream for §1's monthly-active-users query: `o_orderdate`
/// ascending-ish and `o_custkey` with realistic repeat behaviour.
pub fn orders_stream(n: usize, customers: i64, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut o_orderdate = Vec::with_capacity(n);
    let mut o_custkey = Vec::with_capacity(n);
    let mut day = ymd_to_days(1995, 1, 1);
    // ~60 orders per day so a 30-day window sees a realistic share of the
    // customer base.
    for _ in 0..n {
        if rng.gen_bool(1.0 / 60.0) {
            day += 1;
        }
        o_orderdate.push(day);
        o_custkey.push(rng.gen_range(1..=customers.max(1)));
    }
    Table::new(vec![
        ("o_orderdate", Column::dates(o_orderdate)),
        ("o_custkey", Column::ints(o_custkey)),
    ])
    .expect("columns equally long")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpcc_results_shape() {
        let t = tpcc_results(50, 1);
        assert_eq!(t.num_rows(), 50);
        // Submission dates strictly increase (each gap >= 20 days).
        let dates: Vec<i64> = (0..50)
            .map(|i| t.column("submission_date").unwrap().get(i).as_i64().unwrap())
            .collect();
        assert!(dates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn stock_orders_positive_prices_and_windows() {
        let t = stock_orders(100, 2);
        for i in 0..100 {
            assert!(t.column("price").unwrap().get(i).as_i64().unwrap() >= 100);
            assert!(t.column("good_for").unwrap().get(i).as_i64().unwrap() >= 10);
        }
    }

    #[test]
    fn orders_stream_dates_nondecreasing() {
        let t = orders_stream(200, 20, 3);
        let dates: Vec<i64> =
            (0..200).map(|i| t.column("o_orderdate").unwrap().get(i).as_i64().unwrap()).collect();
        assert!(dates.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn deterministic() {
        let a = tpcc_results(30, 9);
        let b = tpcc_results(30, 9);
        for i in 0..30 {
            assert_eq!(a.column("tps").unwrap().get(i), b.column("tps").unwrap().get(i));
        }
    }
}
