//! Array-level algorithm implementations benchmarked against each other.
//!
//! All take values pre-sorted by the window ORDER BY plus per-row frames,
//! exactly like the paper's window operator after its sort phase. The merge
//! sort tree paths mirror `holistic-window`'s evaluators without the engine's
//! dynamic-value overhead, so algorithm comparisons measure the algorithms.

use holistic_core::{dense_codes, prev_idcs_by_key, MergeSortTree, MstParams, RangeSet};

/// Framed PERCENTILE_DISC via permutation array + merge sort tree (§4.5).
pub fn mst_percentile(
    values: &[i64],
    frames: &[(usize, usize)],
    p: f64,
    params: MstParams,
) -> Vec<Option<i64>> {
    let dc = dense_codes(values, params.parallel);
    let perm: Vec<u32> = dc.perm.iter().map(|&x| x as u32).collect();
    let tree = MergeSortTree::<u32>::build(&perm, params);
    let probe = |&(a, b): &(usize, usize)| -> Option<i64> {
        let s = b.saturating_sub(a);
        if s == 0 {
            return None;
        }
        let j = ((p * s as f64).ceil() as usize).clamp(1, s);
        let rank = tree.select(&RangeSet::single(a, b), j - 1).expect("j <= s");
        Some(values[dc.perm[rank]])
    };
    maybe_par_map(frames, params.parallel, probe)
}

/// Framed COUNT(DISTINCT) via prevIdcs + merge sort tree (§4.2).
pub fn mst_distinct_count(
    hashes: &[u64],
    frames: &[(usize, usize)],
    params: MstParams,
) -> Vec<usize> {
    let prev: Vec<u32> =
        prev_idcs_by_key(hashes, params.parallel).iter().map(|&x| x as u32).collect();
    let tree = MergeSortTree::<u32>::build(&prev, params);
    maybe_par_map(frames, params.parallel, |&(a, b)| tree.count_below(a, b.max(a), a as u32 + 1))
}

/// Framed RANK via dense codes + merge sort tree (§4.4).
pub fn mst_rank(values: &[i64], frames: &[(usize, usize)], params: MstParams) -> Vec<usize> {
    let dc = dense_codes(values, params.parallel);
    let codes: Vec<u32> = dc.code.iter().map(|&c| c as u32).collect();
    let tree = MergeSortTree::<u32>::build(&codes, params);
    let gmin = &dc.group_min;
    maybe_par_map_idx(frames, params.parallel, |i, &(a, b)| {
        tree.count_below(a, b.max(a), gmin[i] as u32) + 1
    })
}

/// Framed LEAD(value, 1) by value order via both trees (§4.6).
pub fn mst_lead(values: &[i64], frames: &[(usize, usize)], params: MstParams) -> Vec<Option<i64>> {
    let dc = dense_codes(values, params.parallel);
    let codes: Vec<u32> = dc.code.iter().map(|&c| c as u32).collect();
    let code_tree = MergeSortTree::<u32>::build(&codes, params);
    let perm: Vec<u32> = dc.perm.iter().map(|&x| x as u32).collect();
    let select_tree = MergeSortTree::<u32>::build(&perm, params);
    let code = &dc.code;
    let perm_usize = &dc.perm;
    maybe_par_map_idx(frames, params.parallel, |i, &(a, b)| {
        let b = b.max(a);
        let s = b - a;
        let rs = RangeSet::single(a, b);
        let rn0 = code_tree.count_below(a, b, code[i] as u32);
        let target = rn0 + 1;
        if target >= s {
            return None;
        }
        let rank = select_tree.select(&rs, target).expect("target < s");
        Some(values[perm_usize[rank]])
    })
}

/// Framed percentile on the sorted-list segment tree (base intervals,
/// O(n (log n)²) — Table 1's "segment tree" row).
pub fn segtree_percentile(
    values: &[i64],
    frames: &[(usize, usize)],
    p: f64,
    parallel: bool,
) -> Vec<Option<i64>> {
    let st = holistic_segtree::SortedListSegTree::build(values, parallel);
    maybe_par_map(frames, parallel, |&(a, b)| {
        let s = b.saturating_sub(a);
        if s == 0 {
            return None;
        }
        let j = ((p * s as f64).ceil() as usize).clamp(1, s);
        st.select(a, b, j - 1)
    })
}

fn maybe_par_map<T: Send + Sync, O: Send>(
    items: &[T],
    parallel: bool,
    f: impl Fn(&T) -> O + Send + Sync,
) -> Vec<O> {
    use rayon::prelude::*;
    if parallel && items.len() >= 2048 {
        items.par_iter().map(f).collect()
    } else {
        items.iter().map(f).collect()
    }
}

fn maybe_par_map_idx<T: Send + Sync, O: Send>(
    items: &[T],
    parallel: bool,
    f: impl Fn(usize, &T) -> O + Send + Sync,
) -> Vec<O> {
    use rayon::prelude::*;
    if parallel && items.len() >= 2048 {
        items.par_iter().enumerate().map(|(i, t)| f(i, t)).collect()
    } else {
        items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_baselines::taskpar;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sliding(n: usize, w: usize) -> Vec<(usize, usize)> {
        (0..n).map(|i| (i.saturating_sub(w - 1), i + 1)).collect()
    }

    #[test]
    fn mst_percentile_matches_naive() {
        let mut rng = StdRng::seed_from_u64(20);
        let vals: Vec<i64> = (0..500).map(|_| rng.gen_range(0..200)).collect();
        for w in [1usize, 13, 100, 500] {
            let frames = sliding(vals.len(), w);
            for p in [0.1, 0.5, 0.99] {
                assert_eq!(
                    mst_percentile(&vals, &frames, p, MstParams::default()),
                    taskpar::naive_percentile(&vals, &frames, p),
                    "w={w} p={p}"
                );
            }
        }
    }

    #[test]
    fn mst_distinct_matches_naive() {
        let mut rng = StdRng::seed_from_u64(21);
        let vals: Vec<u64> = (0..400).map(|_| rng.gen_range(0..30)).collect();
        let frames = sliding(vals.len(), 77);
        assert_eq!(
            mst_distinct_count(&vals, &frames, MstParams::default()),
            taskpar::naive_distinct_count(&vals, &frames)
        );
    }

    #[test]
    fn mst_rank_matches_naive() {
        let mut rng = StdRng::seed_from_u64(22);
        let vals: Vec<i64> = (0..400).map(|_| rng.gen_range(0..40)).collect();
        let frames = sliding(vals.len(), 50);
        assert_eq!(
            mst_rank(&vals, &frames, MstParams::default()),
            taskpar::naive_rank(&vals, &frames)
        );
    }

    #[test]
    fn mst_lead_matches_naive() {
        let mut rng = StdRng::seed_from_u64(23);
        let vals: Vec<i64> = (0..300).map(|_| rng.gen_range(0..25)).collect();
        let frames = sliding(vals.len(), 40);
        assert_eq!(
            mst_lead(&vals, &frames, MstParams::default()),
            taskpar::naive_lead(&vals, &frames)
        );
    }

    #[test]
    fn segtree_percentile_matches_naive() {
        let mut rng = StdRng::seed_from_u64(24);
        let vals: Vec<i64> = (0..300).map(|_| rng.gen_range(-50..50)).collect();
        let frames = sliding(vals.len(), 64);
        assert_eq!(
            segtree_percentile(&vals, &frames, 0.5, false),
            taskpar::naive_percentile(&vals, &frames, 0.5)
        );
    }

    #[test]
    fn non_monotonic_frames_agree_across_algorithms() {
        let mut rng = StdRng::seed_from_u64(25);
        let vals: Vec<i64> = (0..300).map(|_| rng.gen_range(0..100)).collect();
        let frames: Vec<(usize, usize)> = (0..vals.len())
            .map(|i| {
                let jitter = (vals[i] * 7703).rem_euclid(59) as usize;
                let a = i.saturating_sub(jitter);
                let b = (i + 60 - jitter).min(vals.len()).max(a);
                (a, b)
            })
            .collect();
        let expect = taskpar::naive_percentile(&vals, &frames, 0.5);
        assert_eq!(mst_percentile(&vals, &frames, 0.5, MstParams::default()), expect);
        assert_eq!(holistic_baselines::incremental::percentile(&vals, &frames, 0.5), expect);
        assert_eq!(segtree_percentile(&vals, &frames, 0.5, false), expect);
    }
}
