//! # holistic-bench — the harness regenerating every table and figure
//!
//! Array-level implementations of each evaluated algorithm on identical
//! inputs, mirroring the paper's setup (§6.1): values pre-sorted by the
//! window ORDER BY, frames given as `[start, end)` position ranges. One
//! binary per experiment regenerates the corresponding figure/table series
//! (see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! ```bash
//! cargo run --release -p holistic-bench --bin fig09
//! cargo run --release -p holistic-bench --bin fig10   # N=... to rescale
//! ...
//! cargo run --release -p holistic-bench --bin table1
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algos;
pub mod json;
pub mod workloads;

use std::time::{Duration, Instant};

/// Wall-times one run of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Best-of-`reps` wall time (the paper reports end-to-end query times; we
/// take the minimum to suppress scheduling noise on the shared runner).
pub fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    let (mut out, mut best) = time_once(&mut f);
    for _ in 1..reps.max(1) {
        let (o, d) = time_once(&mut f);
        if d < best {
            best = d;
            out = o;
        }
    }
    (out, best)
}

/// Tuples per second, in millions.
pub fn mtps(n: usize, d: Duration) -> f64 {
    n as f64 / d.as_secs_f64() / 1e6
}

/// Reads a usize from the environment with a default (used by the figure
/// binaries to scale problem sizes: `N=1000000 cargo run --bin fig11 ...`).
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers_run() {
        let (v, d) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        let (v, _) = time_best(3, || 7);
        assert_eq!(v, 7);
        assert!(d.as_nanos() < 1_000_000_000);
        assert!(mtps(1_000_000, Duration::from_secs(1)) - 1.0 < 1e-9);
    }

    #[test]
    fn env_usize_defaults() {
        assert_eq!(env_usize("HOLISTIC_BENCH_UNSET_VAR", 7), 7);
    }
}
