//! Benchmark workload preparation: lineitem samples pre-sorted by the window
//! ORDER BY, plus the frame generators of §6.3–§6.5.

use holistic_tpch::lineitem;
use holistic_window::hash::hash_value;
use holistic_window::Value;

/// A lineitem sample sorted by `l_shipdate`, reduced to the arrays the
/// benchmark queries touch.
pub struct SortedLineitem {
    /// `l_extendedprice` in ship-date order (median / rank / lead column).
    pub extendedprice: Vec<i64>,
    /// Hashes of `l_partkey` in ship-date order (distinct-count column).
    pub partkey_hash: Vec<u64>,
    /// `l_shipdate` (sorted ascending).
    pub shipdate: Vec<i32>,
}

/// Generates and sorts `n` lineitem rows (the window operator's sort phase,
/// performed once so per-algorithm timings exclude it — the paper's
/// algorithms all share it anyway).
pub fn sorted_lineitem(n: usize, seed: u64) -> SortedLineitem {
    let li = lineitem(n, seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| (li.shipdate[i], i));
    SortedLineitem {
        extendedprice: order.iter().map(|&i| li.extendedprice[i]).collect(),
        partkey_hash: order.iter().map(|&i| hash_value(&Value::Int(li.partkey[i]))).collect(),
        shipdate: order.iter().map(|&i| li.shipdate[i]).collect(),
    }
}

/// `ROWS BETWEEN w-1 PRECEDING AND CURRENT ROW` (the sliding frames of
/// §6.2–§6.4).
pub fn sliding_frames(n: usize, w: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i.saturating_sub(w.saturating_sub(1)), i + 1)).collect()
}

/// The non-monotonic frames of §6.5:
/// `ROWS BETWEEN m·mod(price·7703, 499) PRECEDING
///       AND 500 − m·mod(price·7703, 499) FOLLOWING`,
/// where `m` scales the pseudo-random jitter (m = 0 → monotonic, size-500
/// frames; m = 1 → full jitter at unchanged frame size).
pub fn nonmonotonic_frames(prices: &[i64], m: f64) -> Vec<(usize, usize)> {
    let n = prices.len();
    (0..n)
        .map(|i| {
            let r = (prices[i].wrapping_mul(7703)).rem_euclid(499) as f64;
            let back = (m * r) as usize;
            let fwd = 500usize.saturating_sub((m * r) as usize);
            let a = i.saturating_sub(back);
            let b = (i + fwd + 1).min(n).max(a);
            (a, b)
        })
        .collect()
}

/// Uniformly distributed random integers (the Figure 13 microbenchmark).
pub fn random_ints(n: usize, seed: u64) -> Vec<i64> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<i32>() as i64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_lineitem_is_sorted() {
        let s = sorted_lineitem(2_000, 1);
        assert!(s.shipdate.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s.extendedprice.len(), 2_000);
        assert_eq!(s.partkey_hash.len(), 2_000);
    }

    #[test]
    fn sliding_frames_shapes() {
        let f = sliding_frames(5, 3);
        assert_eq!(f, vec![(0, 1), (0, 2), (0, 3), (1, 4), (2, 5)]);
        let f = sliding_frames(3, 1);
        assert_eq!(f, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn nonmonotonic_m0_is_monotonic_500() {
        let prices: Vec<i64> = (0..2_000).map(|i| i * 37 % 1000).collect();
        let frames = nonmonotonic_frames(&prices, 0.0);
        assert!(frames.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        // Interior frames have 501 rows (i ..= i+500).
        assert_eq!(frames[0], (0, 501));
        assert_eq!(frames[100].1 - frames[100].0, 501);
    }

    #[test]
    fn nonmonotonic_m1_jitters_but_keeps_size() {
        let prices: Vec<i64> = (0..3_000).map(|i| i * 911 % 10_000).collect();
        let frames = nonmonotonic_frames(&prices, 1.0);
        // Interior frames keep ~501 rows but starts are not monotone.
        let interior = &frames[600..2_400];
        assert!(interior.iter().all(|&(a, b)| b - a == 501));
        assert!(interior.windows(2).any(|w| w[1].0 < w[0].0), "starts must jump backwards");
    }
}
