//! Table 1 — empirical verification of the complexity table: runtime
//! scaling, parallelizability, and space of each algorithm × aggregate.
//!
//! For each cell we measure total runtime at n and 2n with the paper's
//! default frame (`UNBOUNDED PRECEDING .. CURRENT ROW`, i.e. frame size
//! O(n)) and report the growth factor. Theory: an O(n log n) algorithm
//! roughly doubles (×2.2); an O(n²) one quadruples. For the merge sort tree
//! we additionally report measured O(n log n) space.

use holistic_baselines::{incremental, taskpar};
use holistic_bench::json::{self, BenchRecord};
use holistic_bench::workloads::{sliding_frames, sorted_lineitem};
use holistic_bench::{algos, env_usize, time_best};
use holistic_core::{paper_element_estimate, MergeSortTree, MstParams};

fn growth(f: impl Fn(usize) -> f64, n: usize) -> (f64, f64, f64) {
    let t1 = f(n);
    let t2 = f(2 * n);
    (t1, t2, t2 / t1)
}

fn main() {
    let n = env_usize("N", 30_000);
    println!("# Table 1: measured runtime growth for doubled input (default frame: whole prefix)");
    println!(
        "{:<14} {:<22} {:>9} {:>9} {:>7} {:>11}",
        "aggregate", "algorithm", "t(n) ms", "t(2n) ms", "ratio", "theory"
    );

    let run = |nn: usize, which: &str| -> f64 {
        let data = sorted_lineitem(nn, 42);
        let frames = sliding_frames(nn, nn); // the SQL default frame
        let vals = &data.extendedprice;
        let hashes = &data.partkey_hash;
        let (_, d) = time_best(2, || match which {
            "inc-dc" => {
                incremental::distinct_count(hashes, &frames);
            }
            "mst-dc" => {
                algos::mst_distinct_count(hashes, &frames, MstParams::default());
            }
            "naive-dc" => {
                taskpar::naive_distinct_count(hashes, &frames);
            }
            "inc-pct" => {
                incremental::percentile(vals, &frames, 0.5);
            }
            "seg-pct" => {
                algos::segtree_percentile(vals, &frames, 0.5, true);
            }
            "ost-pct" => {
                taskpar::ostree_percentile(vals, &frames, 0.5, usize::MAX, false);
            }
            "mst-pct" => {
                algos::mst_percentile(vals, &frames, 0.5, MstParams::default());
            }
            "ost-rank" => {
                taskpar::ostree_rank(vals, &frames, usize::MAX, false);
            }
            "mst-rank" => {
                algos::mst_rank(vals, &frames, MstParams::default());
            }
            _ => unreachable!(),
        });
        d.as_secs_f64() * 1e3
    };

    let rows: Vec<(&str, &str, &str, &str)> = vec![
        ("dist. count", "incremental [38]", "inc-dc", "O(n) serial"),
        ("dist. count", "MST (ours)", "mst-dc", "O(n log n)"),
        ("dist. count", "naive", "naive-dc", "O(n^2)"),
        ("percentile", "incremental [38]", "inc-pct", "O(n^2)"),
        ("percentile", "segment tree [1,27]", "seg-pct", "O(n log^2 n)"),
        ("percentile", "order stat. tree [17]", "ost-pct", "O(n log n)"),
        ("percentile", "MST (ours)", "mst-pct", "O(n log n)"),
        ("rank", "order stat. tree [17]", "ost-rank", "O(n log n)"),
        ("rank", "MST (ours)", "mst-rank", "O(n log n)"),
    ];
    let emit_json = std::env::args().any(|a| a == "--json");
    let mut records: Vec<BenchRecord> = Vec::new();
    for (agg, alg, key, theory) in rows {
        // Quadratic algorithms get a smaller n so the run stays bounded.
        let nn = if theory == "O(n^2)" { n.min(20_000) } else { n };
        let (t1, t2, r) = growth(|x| run(x, key), nn);
        println!("{:<14} {:<22} {:>9.1} {:>9.1} {:>6.2}x {:>11}", agg, alg, t1, t2, r, theory);
        records.push(
            BenchRecord::new(&format!("growth/{agg}"), nn, key, t1 * 1e6 / nn as f64)
                .with("growth_ratio", r),
        );
    }

    println!("\n# space: merge sort tree elements vs the paper's n log n estimate (f = k = 32)");
    println!("{:<10} {:>14} {:>14} {:>9}", "n", "measured", "estimate", "bytes/elt");
    for nn in [100_000usize, 400_000, 1_600_000] {
        let vals: Vec<u32> =
            holistic_bench::workloads::random_ints(nn, 3).iter().map(|&v| v as u32).collect();
        let t = MergeSortTree::<u32>::build(&vals, MstParams::default());
        let s = t.stats();
        println!(
            "{:<10} {:>14} {:>14} {:>9.2}",
            nn,
            s.elements + s.pointers,
            paper_element_estimate(nn, 32, 32),
            s.bytes as f64 / nn as f64
        );
        records.push(
            BenchRecord::new("mst_space", nn, "f32_k32", f64::NAN)
                .with("stored", (s.elements + s.pointers) as f64)
                .with("estimate", paper_element_estimate(nn, 32, 32) as f64)
                .with("bytes_per_element", s.bytes as f64 / nn as f64),
        );
    }
    println!("# parallel: MST build/probe = yes (rayon); incremental/order-statistic = no (task warm-up, §3.2)");

    if emit_json {
        let path = json::write("table1", &records).expect("write json");
        println!("# wrote {}", path.display());
    }
}
