//! Figure 12 — throughput of a framed median for increasingly non-monotonic
//! window frames.
//!
//! Paper query (§6.5):
//! `ROWS BETWEEN m·mod(l_extendedprice·7703, 499) PRECEDING
//!        AND 500 − m·mod(…) FOLLOWING` — constant ~500-row frames whose
//! *placement* jitters pseudo-randomly with amplitude `m`.
//!
//! Expected shape: at m = 0 the incremental algorithm is competitive (tiny
//! frames, §6.4); any non-zero jitter makes tuples enter and leave the frame
//! repeatedly, so the incremental algorithm falls behind — eventually below
//! even the naive algorithm (re-entry bookkeeping costs more than
//! recomputation) — while the merge sort tree does not depend on frame
//! overlap at all and stays flat.

use holistic_baselines::{incremental, taskpar};
use holistic_bench::json::{self, BenchRecord};
use holistic_bench::workloads::{nonmonotonic_frames, sorted_lineitem};
use holistic_bench::{algos, env_usize, mtps, time_once};
use holistic_core::MstParams;

fn main() {
    let n = env_usize("N", 200_000);
    let emit_json = std::env::args().any(|a| a == "--json");
    let mut records: Vec<BenchRecord> = Vec::new();
    let data = sorted_lineitem(n, 42);
    let vals = &data.extendedprice;

    println!("# Figure 12: framed median throughput (Mtuples/s) vs non-monotonicity m, n={n}");
    println!("{:<6} | {:>10} {:>12} {:>10}", "m", "mst", "incremental", "naive");
    for m in [0.0f64, 0.125, 0.25, 0.5, 0.75, 1.0] {
        let frames = nonmonotonic_frames(vals, m);
        let (mst_out, d) =
            time_once(|| algos::mst_percentile(vals, &frames, 0.5, MstParams::default()));
        let mst = mtps(n, d);
        let (inc_out, d) = time_once(|| incremental::percentile(vals, &frames, 0.5));
        let inc = mtps(n, d);
        let (naive_out, d) = time_once(|| taskpar::naive_percentile(vals, &frames, 0.5));
        let naive = mtps(n, d);
        assert_eq!(mst_out, inc_out, "algorithms disagree at m={m}");
        assert_eq!(mst_out, naive_out, "algorithms disagree at m={m}");
        println!("{:<6} | {:>10.3} {:>12.3} {:>10.3}", m, mst, inc, naive);
        let workload = format!("nonmonotonic/m{m}");
        for (algo, tput) in [("mst", mst), ("incremental", inc), ("naive", naive)] {
            records.push(BenchRecord::new(&workload, n, algo, 1e3 / tput));
        }
    }
    println!("# (all three algorithms verified to produce identical medians)");

    if emit_json {
        let path = json::write("fig12", &records).expect("write json");
        println!("# wrote {}", path.display());
    }
}
