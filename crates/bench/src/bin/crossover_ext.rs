//! Supplementary experiment: strategy crossovers and the adaptive executor
//! (DESIGN.md "Strategy layer & cost model").
//!
//! Sweeps partition size × frame shape × call family, timing every forced
//! strategy (`naive`, `incremental`, `ostree`, `segtree`, `mst`) plus the
//! adaptive default on each cell. The per-cell numbers are the calibration
//! data behind `CostModel::default()`'s constants; the two headline checks
//! are the strategy layer's reason to exist:
//!
//! * **uniform grid** — summed over the whole grid, adaptive must land
//!   within 5% of the best *per-cell* forced strategy (an oracle no single
//!   forced strategy attains);
//! * **skewed mix** — many tiny partitions plus a few large ones; adaptive
//!   must beat always-MST by ≥ 1.5× by skipping the artifact machinery on
//!   the tiny partitions.
//!
//! Naive cells whose estimated work (`rows × frame width`) exceeds
//! `NAIVE_BUDGET` are skipped — quadratic scans at 1M × 512 would dominate
//! the run without informing the model. Checks only engage at `N ≥ 500k`
//! (the CI smoke runs a tiny `N` where constant overheads swamp the model).
//!
//! Human-readable tables always; `--json` additionally writes
//! `bench_results/BENCH_crossover_ext.json`. `N=...` rescales (default 1M).

use holistic_bench::json::{self, BenchRecord};
use holistic_bench::{env_usize, time_best};
use holistic_window::frame::{FrameBound, FrameSpec};
use holistic_window::{
    col, lit, Column, ExecOptions, FunctionCall, SortKey, Strategy, Table, WindowQuery, WindowSpec,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A table of `n` rows split into consecutive partitions of the given sizes:
/// `g` is the partition id, `pos` the in-partition order, `v` a value with a
/// modest domain (so distinct aggregates and mode have real work).
fn make_table(sizes: &[usize], seed: u64) -> Table {
    let n: usize = sizes.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Vec::with_capacity(n);
    for (p, &s) in sizes.iter().enumerate() {
        g.extend(std::iter::repeat_n(p as i64, s));
    }
    let v: Vec<i64> = (0..n).map(|_| rng.gen_range(0..997)).collect();
    Table::new(vec![
        ("g", Column::ints(g)),
        ("pos", Column::ints((0..n as i64).collect())),
        ("v", Column::ints(v)),
    ])
    .unwrap()
}

fn query(calls: Vec<FunctionCall>, w: usize) -> WindowQuery {
    let mut q = WindowQuery::over(
        WindowSpec::new()
            .partition_by(vec![col("g")])
            .order_by(vec![SortKey::asc(col("pos"))])
            .frame(FrameSpec::rows(
                FrameBound::Preceding(lit(w as i64 - 1)),
                FrameBound::CurrentRow,
            )),
    );
    for c in calls {
        q = q.call(c);
    }
    q
}

fn family_call(family: &str) -> FunctionCall {
    match family {
        "median" => FunctionCall::median(col("v")).named("o"),
        "count_distinct" => FunctionCall::count_distinct(col("v")).named("o"),
        "sum" => FunctionCall::sum(col("v")).named("o"),
        _ => unreachable!(),
    }
}

/// Times one engine run (serial; best of `reps`) in ns/row.
fn run_ns(q: &WindowQuery, t: &Table, opts: ExecOptions, reps: usize) -> f64 {
    let n = t.num_rows();
    let (out, d) = time_best(reps, || q.execute_with(t, opts).unwrap());
    assert_eq!(out.column("o").map(|c| c.len()).unwrap_or(n), n);
    d.as_nanos() as f64 / n as f64
}

fn main() {
    let n = env_usize("N", 1_000_000);
    let reps = env_usize("REPS", 2);
    let naive_budget = env_usize("NAIVE_BUDGET", 200_000_000);
    let emit_json = std::env::args().any(|a| a == "--json");
    let check = n >= 500_000;
    let mut failed = false;
    let mut records: Vec<BenchRecord> = Vec::new();

    println!("# crossover_ext: strategy crossovers, n={n}, serial, best of {reps}");

    // ---- Uniform grid ----------------------------------------------------
    let sizes = [32usize, 256, 2048, 16384, 131072];
    let widths = [16usize, 512];
    let families = ["median", "count_distinct", "sum"];
    let mut adaptive_total = 0.0f64;
    let mut oracle_total = 0.0f64;
    println!(
        "# {:<14} {:>7} {:>5} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>8}  chosen",
        "family", "m", "w", "naive", "incr", "ostree", "segtree", "mst", "adaptive"
    );
    for &m in &sizes {
        let m = m.min(n);
        let parts = (n / m).max(1);
        let table = make_table(&vec![m; parts], 7 + m as u64);
        for family in families {
            for &w in &widths {
                let q = query(vec![family_call(family)], w);
                let workload = format!("{family}/m{m}/w{w}");
                let mut cells: Vec<(String, f64)> = Vec::new();
                let mut best = f64::INFINITY;
                for s in Strategy::ALL {
                    // A quadratic scan over wide frames is pure waste: skip
                    // naive cells whose cell count blows the budget.
                    if s == Strategy::Naive && n.saturating_mul(w.min(m)) > naive_budget {
                        cells.push((s.name().to_string(), f64::NAN));
                        continue;
                    }
                    let ns = run_ns(&q, &table, ExecOptions::serial().force_strategy(s), reps);
                    best = best.min(ns);
                    records.push(BenchRecord::new(&workload, n, s.name(), ns));
                    cells.push((s.name().to_string(), ns));
                }
                let adaptive = run_ns(&q, &table, ExecOptions::serial(), reps);
                records.push(BenchRecord::new(&workload, n, "adaptive", adaptive));
                adaptive_total += adaptive;
                oracle_total += best;
                let (_, profile) =
                    q.execute_profiled(&table, ExecOptions::serial()).expect("profiled run");
                let chosen = Strategy::ALL
                    .iter()
                    .max_by_key(|s| profile.strategy.decisions[s.index()])
                    .map(|s| s.name())
                    .unwrap_or("?");
                let cell = |i: usize| {
                    let v = cells[i].1;
                    if v.is_nan() {
                        "     --".to_string()
                    } else {
                        format!("{v:>7.1}")
                    }
                };
                println!(
                    "  {family:<14} {m:>7} {w:>5} | {} {} {} {} {} | {adaptive:>7.1}  {chosen}",
                    cell(0),
                    cell(1),
                    cell(2),
                    cell(3),
                    cell(4),
                );
            }
        }
    }
    let grid_ratio = adaptive_total / oracle_total;
    println!(
        "# grid total: adaptive {adaptive_total:.1} ns/row vs per-cell oracle {oracle_total:.1} \
         ns/row (ratio {grid_ratio:.3})"
    );
    records.push(BenchRecord::new("grid_total", n, "adaptive", adaptive_total));
    records.push(BenchRecord::new("grid_total", n, "oracle", oracle_total));
    if check && grid_ratio > 1.05 {
        println!("# CHECK FAILED: adaptive more than 5% off the per-cell oracle");
        failed = true;
    }

    // ---- Skewed mix: many tiny partitions + a few large ------------------
    // 24 rows out of every 25 live in size-8 partitions; the rest form a
    // handful of 24k-row partitions. Multi-call query spanning families.
    let tiny = 8usize;
    let big = 24_000usize.min(n / 4).max(tiny);
    let mut sizes: Vec<usize> = Vec::new();
    let mut rows = 0usize;
    while rows < n {
        let s = if sizes.len() % 3001 == 3000 { big } else { tiny };
        sizes.push(s.min(n - rows));
        rows += sizes.last().unwrap();
    }
    let table = make_table(&sizes, 99);
    let q = query(
        vec![
            FunctionCall::median(col("v")).named("o"),
            FunctionCall::count_distinct(col("v")).named("cd"),
            FunctionCall::sum(col("v")).named("s"),
        ],
        16,
    );
    println!(
        "# skewed: {} partitions ({} tiny of {tiny}, rest {big})",
        sizes.len(),
        sizes.iter().filter(|&&s| s == tiny).count()
    );
    let mut skew: Vec<(String, f64)> = Vec::new();
    for s in Strategy::ALL {
        let ns = run_ns(&q, &table, ExecOptions::serial().force_strategy(s), reps);
        records.push(BenchRecord::new("skewed", n, s.name(), ns));
        skew.push((s.name().to_string(), ns));
        println!("  skewed {:<12} {ns:>8.1} ns/row", s.name());
    }
    let adaptive = run_ns(&q, &table, ExecOptions::serial(), reps);
    records.push(BenchRecord::new("skewed", n, "adaptive", adaptive));
    let mst = skew.iter().find(|(s, _)| s == "mst").map(|&(_, v)| v).unwrap();
    let best_forced = skew.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    println!(
        "  skewed {:<12} {adaptive:>8.1} ns/row ({:.2}x vs always-MST, {:.3} of best forced)",
        "adaptive",
        mst / adaptive,
        adaptive / best_forced
    );
    if check && mst / adaptive < 1.5 {
        println!("# CHECK FAILED: adaptive under 1.5x always-MST on the skewed mix");
        failed = true;
    }
    if check && adaptive / best_forced > 1.05 {
        println!("# CHECK FAILED: adaptive more than 5% off the best forced strategy (skewed)");
        failed = true;
    }

    if emit_json {
        let path = json::write("crossover_ext", &records).unwrap();
        println!("# wrote {}", path.display());
    }
    if failed {
        std::process::exit(1);
    }
    println!("# crossover_ext OK");
}
