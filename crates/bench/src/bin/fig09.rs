//! Figure 9 — throughput of a framed median on a tiny data set: traditional
//! SQL formulations vs. native framed-median support.
//!
//! Paper query (§6.2): `percentile_disc(0.5 order by l_extendedprice) over
//! (order by l_shipdate rows between 999 preceding and current row)` on
//! 20 000 lineitem rows; compared against a correlated subquery, a self join
//! (both executed as the O(n²) nested-loop plans every tested system
//! produces), and Tableau's client-side table calculation.
//!
//! Expected shape (paper): SQL formulations slowest (varying by ~an order of
//! magnitude); the client-side tool in between; the *naive* native algorithm
//! already ~15× over the client tool and ~3× over the best SQL plan; the
//! merge sort tree ~63× over the best SQL plan.

use holistic_baselines::{sqlsim, taskpar};
use holistic_bench::json::{self, BenchRecord};
use holistic_bench::workloads::{sliding_frames, sorted_lineitem};
use holistic_bench::{algos, env_usize, mtps, time_best};
use holistic_core::MstParams;

fn main() {
    let n = env_usize("N", 20_000);
    let w = env_usize("W", 1_000);
    let reps = env_usize("REPS", 3);
    let emit_json = std::env::args().any(|a| a == "--json");
    let data = sorted_lineitem(n, 42);
    let values = &data.extendedprice;
    let frames = sliding_frames(n, w);

    println!(
        "# Figure 9: framed median, n={n}, frame=ROWS {w_1} PRECEDING..CURRENT ROW",
        w_1 = w - 1
    );
    println!("{:<28} {:>12} {:>14} {:>10}", "approach", "time_ms", "Mtuples/s", "vs_best_sql");

    let mut rows: Vec<(&str, f64)> = Vec::new();

    let (base, d) = time_best(reps, || sqlsim::correlated_subquery_median(values, w));
    rows.push(("SQL: correlated subquery", d.as_secs_f64()));
    let (r, d) = time_best(reps, || sqlsim::self_join_median(values, w));
    assert_eq!(r, base);
    rows.push(("SQL: self join", d.as_secs_f64()));
    let (r, d) = time_best(reps, || sqlsim::client_tool_median(values, w));
    assert_eq!(r, base);
    rows.push(("client-side tool", d.as_secs_f64()));
    let (r, d) = time_best(reps, || taskpar::naive_percentile(values, &frames, 0.5));
    assert!(r.iter().map(|o| o.unwrap()).eq(base.iter().copied()));
    rows.push(("native: naive", d.as_secs_f64()));
    let (r, d) =
        time_best(reps, || holistic_baselines::incremental::percentile(values, &frames, 0.5));
    assert!(r.iter().map(|o| o.unwrap()).eq(base.iter().copied()));
    rows.push(("native: incremental", d.as_secs_f64()));
    let (r, d) =
        time_best(reps, || algos::mst_percentile(values, &frames, 0.5, MstParams::default()));
    assert!(r.iter().map(|o| o.unwrap()).eq(base.iter().copied()));
    rows.push(("native: merge sort tree", d.as_secs_f64()));

    let best_sql = rows
        .iter()
        .filter(|(name, _)| name.starts_with("SQL"))
        .map(|&(_, t)| t)
        .fold(f64::INFINITY, f64::min);
    for (name, secs) in &rows {
        println!(
            "{:<28} {:>12.2} {:>14.3} {:>9.1}x",
            name,
            secs * 1e3,
            mtps(n, std::time::Duration::from_secs_f64(*secs)),
            best_sql / secs,
        );
    }
    println!("# (all approaches verified to produce identical medians)");

    if emit_json {
        let workload = format!("framed_median/w{w}");
        let records: Vec<BenchRecord> = rows
            .iter()
            .map(|(name, secs)| {
                BenchRecord::new(&workload, n, name, secs * 1e9 / n as f64)
                    .with("speedup_vs_best_sql", best_sql / secs)
            })
            .collect();
        let path = json::write("fig09", &records).expect("write json");
        println!("# wrote {}", path.display());
    }
}
