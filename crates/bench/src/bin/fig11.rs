//! Figure 11 — throughput of a framed median for increasing frame sizes.
//!
//! Paper query (§6.4): median of `l_extendedprice` over
//! `ROWS BETWEEN size PRECEDING AND CURRENT ROW`, scale factor 1.
//!
//! Expected shape: the merge sort tree is flat across all frame sizes; naive
//! and incremental cross below it around frame sizes ~130 and ~700
//! respectively (their per-row cost grows with the frame); the order
//! statistic tree survives until the frame size reaches the 20 000-tuple
//! task granularity, where per-task warm-up work blows up; for SQL's default
//! frame (the whole prefix) only the merge sort tree remains practical.

use holistic_baselines::{incremental, taskpar};
use holistic_bench::json::{self, BenchRecord};
use holistic_bench::workloads::{sliding_frames, sorted_lineitem};
use holistic_bench::{algos, env_usize, mtps, time_once};
use holistic_core::MstParams;

fn main() {
    let n = env_usize("N", 200_000);
    let work_cap = env_usize("WORK_CAP", 2_000_000_000);
    let emit_json = std::env::args().any(|a| a == "--json");
    let mut records: Vec<BenchRecord> = Vec::new();
    let task = taskpar::HYPER_TASK_SIZE;
    let data = sorted_lineitem(n, 42);
    let vals = &data.extendedprice;

    let mut frame_sizes = vec![1usize, 10, 30, 100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, n];
    frame_sizes.retain(|&w| w <= n);
    frame_sizes.dedup();

    println!("# Figure 11: framed median throughput (Mtuples/s) vs frame size, n={n}");
    println!(
        "{:<10} | {:>10} {:>10} {:>12} {:>10}",
        "frame", "mst", "ostree", "incremental", "naive"
    );
    let fmt = |o: Option<f64>| o.map(|x| format!("{x:.3}")).unwrap_or_else(|| "skip".into());

    for &w in &frame_sizes {
        let frames = sliding_frames(n, w);
        let (_, d) = time_once(|| algos::mst_percentile(vals, &frames, 0.5, MstParams::default()));
        let mst = Some(mtps(n, d));
        let ost = {
            let warmup = (n / task + 1) * w.min(n) * 20;
            if n * 60 + warmup <= work_cap {
                let (_, d) =
                    time_once(|| taskpar::ostree_percentile(vals, &frames, 0.5, task, true));
                Some(mtps(n, d))
            } else {
                None
            }
        };
        let inc = if n.saturating_mul(w / 2).max(n) <= work_cap {
            let (_, d) = time_once(|| incremental::percentile(vals, &frames, 0.5));
            Some(mtps(n, d))
        } else {
            None
        };
        let naive = if n.saturating_mul(w * 11).max(n) <= work_cap {
            let (_, d) = time_once(|| taskpar::naive_percentile(vals, &frames, 0.5));
            Some(mtps(n, d))
        } else {
            None
        };
        println!(
            "{:<10} | {:>10} {:>10} {:>12} {:>10}",
            w,
            fmt(mst),
            fmt(ost),
            fmt(inc),
            fmt(naive)
        );
        let workload = format!("frame_size/w{w}");
        for (algo, cell) in [("mst", mst), ("ostree", ost), ("incremental", inc), ("naive", naive)]
        {
            // ns/row = 1000 / Mtuples-per-second; skipped cells are omitted.
            if let Some(m) = cell {
                records.push(BenchRecord::new(&workload, n, algo, 1e3 / m));
            }
        }
    }
    println!("# crossover check: find where each competitor's column drops below mst's");

    if emit_json {
        let path = json::write("fig11", &records).expect("write json");
        println!("# wrote {}", path.display());
    }
}
