//! Supplementary experiment: cursor-carrying MST probes vs. stateless
//! probes (DESIGN.md §3.1).
//!
//! The paper's probe phase answers every frame independently with O(log n)
//! cascaded binary searches. Real frames are overwhelmingly *monotonic*:
//! consecutive rows probe nearly-identical boundaries, so a cursor that
//! memoizes the previous row's per-level positions and gallops from them
//! turns the descent into amortized O(1) per level. This binary measures
//! that on three holistic families — framed median, framed rank, and
//! framed COUNT(DISTINCT) — under a monotonic ROWS frame, a monotonic
//! RANGE frame, and a Fig.-12-style jittered (non-monotonic) ROWS frame.
//!
//! Both configurations run serially (`ExecOptions::serial()` vs.
//! `.stateless_probes()`) so the comparison isolates the probe kernel, and
//! results are asserted bit-identical before any timing. Human-readable
//! table always; `--json` additionally writes
//! `bench_results/BENCH_probe_locality_ext.json`.

use holistic_bench::json::{self, BenchRecord};
use holistic_bench::{env_usize, time_best};
use holistic_tpch::lineitem;
use holistic_window::frame::{FrameBound, FrameSpec};
use holistic_window::{
    col, lit, Column, ExecOptions, ExecProfile, FunctionCall, SortKey, Table, WindowQuery,
    WindowSpec,
};

/// One frame shape under test.
struct Workload {
    name: &'static str,
    spec: WindowSpec,
}

fn workloads(w: i64) -> Vec<Workload> {
    let by_date_pos = || vec![SortKey::asc(col("date")), SortKey::asc(col("pos"))];
    vec![
        // Classic trailing window: both bounds advance by one row per row.
        Workload {
            name: "rows_monotonic",
            spec: WindowSpec::new()
                .order_by(by_date_pos())
                .frame(FrameSpec::rows(FrameBound::Preceding(lit(w - 1)), FrameBound::CurrentRow)),
        },
        // Value-based frame over the date key: bounds advance with the key.
        Workload {
            name: "range_monotonic",
            spec: WindowSpec::new().order_by(vec![SortKey::asc(col("date"))]).frame(
                FrameSpec::range(
                    FrameBound::Preceding(lit(30i64)),
                    FrameBound::Following(lit(30i64)),
                ),
            ),
        },
        // Fig. 12 (§6.5) jitter at full amplitude: a ~500-row frame whose
        // placement jumps pseudo-randomly, defeating probe locality.
        Workload {
            name: "rows_jitter",
            spec: WindowSpec::new().order_by(by_date_pos()).frame(FrameSpec::rows(
                FrameBound::Preceding(col("ja")),
                FrameBound::Following(col("jb")),
            )),
        },
    ]
}

fn calls() -> Vec<(&'static str, FunctionCall)> {
    vec![
        ("median", FunctionCall::median(col("price")).named("out")),
        ("rank", FunctionCall::rank(vec![SortKey::asc(col("price"))]).named("out")),
        ("distinct", FunctionCall::count_distinct(col("part")).named("out")),
    ]
}

/// Best-of-`reps` by probe-phase time, keeping that run's full profile.
fn best_probe_profile(
    q: &WindowQuery,
    table: &Table,
    opts: ExecOptions,
    reps: usize,
) -> ExecProfile {
    let (profile, _) = time_best(reps, || q.execute_profiled(table, opts).unwrap().1);
    profile
}

fn record(workload: &str, n: usize, algorithm: &str, call: &str, p: &ExecProfile) -> BenchRecord {
    let k = &p.probe_kernel;
    BenchRecord::new(
        &format!("{workload}/{call}"),
        n,
        algorithm,
        p.probe.as_nanos() as f64 / n as f64,
    )
    .with("cursor_probes", k.cursor_probes as f64)
    .with("stateless_probes", k.stateless_probes as f64)
    .with("gallop_seeded", k.gallop_seeded as f64)
    .with("gallop_steps", k.gallop_steps as f64)
    .with("full_searches", k.full_searches as f64)
    .with("level_resets", k.level_resets as f64)
}

fn main() {
    let n = env_usize("N", 100_000);
    let w = env_usize("W", 500).max(1) as i64;
    let reps = env_usize("REPS", 3);
    let emit_json = std::env::args().any(|a| a == "--json");

    let li = lineitem(n, 42);
    // Fig. 12's jitter function at amplitude m = 1: frames stay ~500 rows
    // wide but their placement jumps with the (pseudo-random) price.
    let ja: Vec<i64> = li.extendedprice.iter().map(|&p| (p * 7703).rem_euclid(499)).collect();
    let jb: Vec<i64> = ja.iter().map(|&a| 499 - a).collect();
    let table = Table::new(vec![
        ("date", Column::ints(li.shipdate.iter().map(|&d| d as i64).collect())),
        ("pos", Column::ints((0..n as i64).collect())),
        ("price", Column::ints(li.extendedprice.clone())),
        ("part", Column::ints(li.partkey.clone())),
        ("ja", Column::ints(ja)),
        ("jb", Column::ints(jb)),
    ])
    .unwrap();

    let cursor_opts = ExecOptions::serial();
    let stateless_opts = ExecOptions::serial().stateless_probes();

    println!("# probe_locality_ext: probe-phase ns/row, cursor vs stateless probes, n={n} w={w}");
    println!(
        "{:<16} {:<9} | {:>10} {:>10} {:>8} | {:>12} {:>12} {:>12}",
        "workload",
        "call",
        "cursor",
        "stateless",
        "speedup",
        "gallop_seed",
        "gallop_steps",
        "resets"
    );

    let mut records = Vec::new();
    for wl in workloads(w) {
        for (call_name, call) in calls() {
            let q = WindowQuery::over(wl.spec.clone()).call(call);

            // Correctness gate: cursor and stateless probes must agree on
            // every output value before anything is timed.
            let (cur_out, _) = q.execute_profiled(&table, cursor_opts).unwrap();
            let (stl_out, _) = q.execute_profiled(&table, stateless_opts).unwrap();
            assert_eq!(
                cur_out.column("out").unwrap().to_values(),
                stl_out.column("out").unwrap().to_values(),
                "cursor/stateless outputs differ: {} {}",
                wl.name,
                call_name
            );

            let cur_p = best_probe_profile(&q, &table, cursor_opts, reps);
            let stl_p = best_probe_profile(&q, &table, stateless_opts, reps);
            let cur_ns = cur_p.probe.as_nanos() as f64 / n as f64;
            let stl_ns = stl_p.probe.as_nanos() as f64 / n as f64;
            println!(
                "{:<16} {:<9} | {:>10.1} {:>10.1} {:>8.3} | {:>12} {:>12} {:>12}",
                wl.name,
                call_name,
                cur_ns,
                stl_ns,
                stl_ns / cur_ns,
                cur_p.probe_kernel.gallop_seeded,
                cur_p.probe_kernel.gallop_steps,
                cur_p.probe_kernel.level_resets,
            );

            records.push(record(wl.name, n, "cursor", call_name, &cur_p));
            records.push(record(wl.name, n, "stateless", call_name, &stl_p));
        }
    }
    println!("# (cursor and stateless outputs verified identical on every cell)");

    if emit_json {
        let path = json::write("probe_locality_ext", &records).unwrap();
        println!("# wrote {}", path.display());
    }
}
