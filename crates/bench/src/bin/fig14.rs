//! Figure 14 — execution-phase breakdown of a framed (running) distinct
//! count on the lineitem table.
//!
//! Paper query (§6.7): running `COUNT(DISTINCT l_partkey)` ordered by
//! `l_shipdate` at scale factor 10 (we default to a smaller sample; set
//! N=60000000 for SF 10). Phases: window set-up (partition + order-by sort),
//! hash-array population, thread-local sort + run merge (Algorithm 1 line 5,
//! split for multithreading), prevIdcs computation, the per-layer merge sort
//! tree build, and the result probe.
//!
//! Expected shape: sorting-related phases dominate; the tree layers together
//! cost about as much as one sort pass; the probe phase is comparable to a
//! layer. (The paper's 6-layer tree at SF 10 matches f = 32: 32⁶ ≥ 60 M.)

use holistic_bench::env_usize;
use holistic_bench::json::{self, BenchRecord};
use holistic_tpch::lineitem;
use holistic_window::expr::col;
use holistic_window::frame::{FrameBound, FrameSpec};
use holistic_window::order::SortKey;
use holistic_window::profile::profile_distinct_count;

fn main() {
    let n = env_usize("N", 2_000_000);
    let tasks = env_usize("TASKS", 8);
    let table = lineitem(n, 42).to_table();
    let frame = FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow);

    let (phases, counts) = profile_distinct_count(
        &table,
        SortKey::asc(col("l_shipdate")),
        &col("l_partkey"),
        &frame,
        tasks,
    )
    .expect("profiling run");

    let total: f64 = phases.iter().map(|(_, d)| d.as_secs_f64()).sum();
    println!("# Figure 14: phase breakdown of a running COUNT(DISTINCT l_partkey), n={n}");
    println!("{:<28} {:>10} {:>7}", "phase", "ms", "%");
    for (name, d) in &phases {
        println!(
            "{:<28} {:>10.1} {:>6.1}%",
            name,
            d.as_secs_f64() * 1e3,
            100.0 * d.as_secs_f64() / total
        );
    }
    println!("{:<28} {:>10.1} {:>6.1}%", "TOTAL", total * 1e3, 100.0);
    println!(
        "# final running distinct count = {} (distinct part keys seen overall)",
        counts.iter().max().unwrap_or(&0)
    );

    if std::env::args().any(|a| a == "--json") {
        let records: Vec<BenchRecord> = phases
            .iter()
            .map(|(name, d)| {
                BenchRecord::new("distinct_count_phases", n, name, {
                    d.as_nanos() as f64 / n as f64
                })
                .with("share", d.as_secs_f64() / total)
            })
            .collect();
        let path = json::write("fig14", &records).expect("write json");
        println!("# wrote {}", path.display());
    }
}
