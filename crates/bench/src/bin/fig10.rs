//! Figure 10 — throughput of holistic window functions for increasing
//! problem sizes (frame = 5 % of the input), four panels: median, rank,
//! lead, distinct count.
//!
//! Expected shape (paper, §6.3): naive and incremental medians never exceed
//! ~0.6 M tuples/s; the order statistic tree is initially competitive but
//! degrades once the frame size approaches the 20 000-tuple task size; the
//! merge sort tree keeps a flat, highest throughput. For distinct counts the
//! incremental algorithm is the only serious competitor.
//!
//! Single-core caveat: the paper's absolute numbers come from 20 cores; on
//! this machine the MST cannot exceed single-thread throughput, but the
//! *relative* decay of the stateful competitors (task warm-up is real work)
//! reproduces. Algorithms whose projected work exceeds WORK_CAP element
//! operations are skipped to keep runtimes sane.

use holistic_baselines::{incremental, taskpar};
use holistic_bench::json::{self, BenchRecord};
use holistic_bench::workloads::{sliding_frames, sorted_lineitem};
use holistic_bench::{algos, env_usize, mtps, time_once};
use holistic_core::MstParams;

/// Converts a throughput in Mtuples/s into ns per row for the JSON record.
fn push(records: &mut Vec<BenchRecord>, func: &str, n: usize, algo: &str, mtps: Option<f64>) {
    if let Some(m) = mtps {
        records.push(BenchRecord::new(func, n, algo, 1000.0 / m));
    }
}

fn main() {
    let n_max = env_usize("N_MAX", 400_000);
    let work_cap = env_usize("WORK_CAP", 2_000_000_000);
    let emit_json = std::env::args().any(|a| a == "--json");
    let mut records = Vec::new();
    let task = taskpar::HYPER_TASK_SIZE;
    let mut sizes = vec![20_000usize, 50_000, 100_000, 200_000, 400_000, 800_000, 1_600_000];
    sizes.retain(|&n| n <= n_max);

    println!("# Figure 10: throughput (Mtuples/s) vs input size, frame = 5% of n");
    println!(
        "{:<10} {:>9} | {:>10} {:>10} {:>12} {:>12} {:>10}",
        "function", "n", "mst", "ostree", "incremental", "incr-serial", "naive"
    );

    for &n in &sizes {
        let data = sorted_lineitem(n, 42);
        let w = (n / 20).max(1);
        let frames = sliding_frames(n, w);
        let vals = &data.extendedprice;
        let hashes = &data.partkey_hash;
        let fmt = |o: Option<f64>| o.map(|x| format!("{x:.3}")).unwrap_or_else(|| "skip".into());

        // ---- median ----
        let (_, d) = time_once(|| algos::mst_percentile(vals, &frames, 0.5, MstParams::default()));
        let mst = Some(mtps(n, d));
        let ost = run_if(n * 60 + (n / task + 1) * w * 20 <= work_cap, || {
            let (_, d) = time_once(|| taskpar::ostree_percentile(vals, &frames, 0.5, task, true));
            mtps(n, d)
        });
        let inc = run_if(n.saturating_mul(w / 2) <= work_cap, || {
            let (_, d) = time_once(|| taskpar::percentile(vals, &frames, 0.5, task, true));
            mtps(n, d)
        });
        let inc_serial = run_if(n.saturating_mul(w / 2) <= work_cap, || {
            let (_, d) = time_once(|| incremental::percentile(vals, &frames, 0.5));
            mtps(n, d)
        });
        let naive = run_if(n.saturating_mul(w * 11) <= work_cap, || {
            let (_, d) = time_once(|| taskpar::naive_percentile(vals, &frames, 0.5));
            mtps(n, d)
        });
        println!(
            "{:<10} {:>9} | {:>10} {:>10} {:>12} {:>12} {:>10}",
            "median",
            n,
            fmt(mst),
            fmt(ost),
            fmt(inc),
            fmt(inc_serial),
            fmt(naive)
        );
        for (algo, m) in [
            ("mst", mst),
            ("ostree", ost),
            ("incremental", inc),
            ("incr-serial", inc_serial),
            ("naive", naive),
        ] {
            push(&mut records, "median", n, algo, m);
        }

        // ---- rank ----
        let (_, d) = time_once(|| algos::mst_rank(vals, &frames, MstParams::default()));
        let mst = Some(mtps(n, d));
        let ost = run_if(n * 60 + (n / task + 1) * w * 20 <= work_cap, || {
            let (_, d) = time_once(|| taskpar::ostree_rank(vals, &frames, task, true));
            mtps(n, d)
        });
        let naive = run_if(n.saturating_mul(w) <= work_cap, || {
            let (_, d) = time_once(|| taskpar::naive_rank(vals, &frames));
            mtps(n, d)
        });
        println!(
            "{:<10} {:>9} | {:>10} {:>10} {:>12} {:>12} {:>10}",
            "rank",
            n,
            fmt(mst),
            fmt(ost),
            "n/a",
            "n/a",
            fmt(naive)
        );
        for (algo, m) in [("mst", mst), ("ostree", ost), ("naive", naive)] {
            push(&mut records, "rank", n, algo, m);
        }

        // ---- lead ----
        let (_, d) = time_once(|| algos::mst_lead(vals, &frames, MstParams::default()));
        let mst = Some(mtps(n, d));
        let naive = run_if(n.saturating_mul(w * 11) <= work_cap, || {
            let (_, d) = time_once(|| taskpar::naive_lead(vals, &frames));
            mtps(n, d)
        });
        println!(
            "{:<10} {:>9} | {:>10} {:>10} {:>12} {:>12} {:>10}",
            "lead",
            n,
            fmt(mst),
            "n/a",
            "n/a",
            "n/a",
            fmt(naive)
        );
        for (algo, m) in [("mst", mst), ("naive", naive)] {
            push(&mut records, "lead", n, algo, m);
        }

        // ---- distinct count ----
        let (_, d) = time_once(|| algos::mst_distinct_count(hashes, &frames, MstParams::default()));
        let mst = Some(mtps(n, d));
        let inc = {
            let (_, d) = time_once(|| taskpar::distinct_count(hashes, &frames, task, true));
            Some(mtps(n, d))
        };
        let inc_serial = {
            let (_, d) = time_once(|| incremental::distinct_count(hashes, &frames));
            Some(mtps(n, d))
        };
        let naive = run_if(n.saturating_mul(w) <= work_cap, || {
            let (_, d) = time_once(|| taskpar::naive_distinct_count(hashes, &frames));
            mtps(n, d)
        });
        println!(
            "{:<10} {:>9} | {:>10} {:>10} {:>12} {:>12} {:>10}",
            "distinct",
            n,
            fmt(mst),
            "n/a",
            fmt(inc),
            fmt(inc_serial),
            fmt(naive)
        );
        for (algo, m) in
            [("mst", mst), ("incremental", inc), ("incr-serial", inc_serial), ("naive", naive)]
        {
            push(&mut records, "distinct", n, algo, m);
        }
    }

    if emit_json {
        let path = json::write("fig10", &records).unwrap();
        println!("# wrote {}", path.display());
    }
}

fn run_if(cond: bool, f: impl FnOnce() -> f64) -> Option<f64> {
    if cond {
        Some(f())
    } else {
        None
    }
}
