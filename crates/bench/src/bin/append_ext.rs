//! Supplementary experiment: amortized incremental maintenance via the
//! delta API (DESIGN.md "Mergeable leveled forests & the append pipeline").
//!
//! Streams a monotone single-partition table in batches of `B` rows through
//! three competitors that all keep every window output fresh after every
//! batch. The frame is the *growing* window (`ROWS UNBOUNDED PRECEDING ..
//! CURRENT ROW` — running medians/percentiles over the whole history),
//! the holistic-aggregate regime where the paper's trees win; narrow
//! trailing frames are the sliding array's home turf (Figure 11's
//! crossover) and are not what the delta API is for.
//!
//! * **append** — `IncrementalEngine`: splice the frames, extend the
//!   leveled MST forests, probe only the new rows (amortized O(b log n)
//!   per batch);
//! * **rebuild** — re-run `execute_with` on the full prefix after every
//!   batch, i.e. what the engine did before the delta API existed
//!   (O(n log n) per refresh; timed at sampled refresh points and
//!   extrapolated — the full schedule is quadratic and would dominate the
//!   run without adding information);
//! * **perrow** — the Wesley & Xu per-row baseline (PVLDB 2016): sorted
//!   arrays maintained under insertion, O(frame) per appended row — here
//!   O(n) memmoves as the window grows.
//!
//! Headline checks (engaged at `N ≥ 500k`; the CI smoke runs a tiny `N`
//! where constant overheads swamp the asymptotics): amortized append+refresh
//! must be ≥ 5× faster than rebuild-per-refresh and must beat the per-row
//! baseline. Independently of size, the delta outputs are compared
//! bit-for-bit against a from-scratch run — across all eight engine
//! configurations at a reduced size, and for the default configuration at
//! full size.
//!
//! Human-readable tables always; `--json` additionally writes
//! `bench_results/BENCH_append_ext.json`. `N=...` rows (default 1M),
//! `B=...` batch rows (default 1k), `REBUILD_SAMPLES=...` sampled rebuild
//! refreshes (default 16).

use holistic_bench::json::{self, BenchRecord};
use holistic_bench::{env_usize, time_once};
use holistic_window::frame::{FrameBound, FrameSpec};
use holistic_window::{
    col, Column, ExecOptions, FunctionCall, SortKey, Table, Value, WindowQuery, WindowSpec,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Duration;

/// A single-partition stream: `t` is the monotone window key, `v` the
/// percentile payload with a modest domain (ties and real rank work).
fn make_table(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let v: Vec<i64> = (0..n).map(|_| rng.gen_range(0..9973)).collect();
    Table::new(vec![("t", Column::ints((0..n as i64).collect())), ("v", Column::ints(v))]).unwrap()
}

/// The all-fast-path query: every call is forest-eligible and the growing
/// frame is splice-eligible (ROWS, unbounded start, monotone `t`).
fn query() -> WindowQuery {
    WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("t"))])
            .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
    )
    .call(FunctionCall::count_star().named("c"))
    .call(FunctionCall::row_number(vec![SortKey::asc(col("t"))]).named("rn"))
    .call(FunctionCall::rank(vec![SortKey::asc(col("t"))]).named("rk"))
    .call(FunctionCall::median(col("v")).named("med"))
    .call(FunctionCall::percentile_disc(0.9, SortKey::asc(col("v"))).named("p90"))
}

/// Streams the table through the delta API; returns total append time and
/// the final profile gauges (runs, merges, rebuilt elements, spliced).
fn run_append(
    table: &Table,
    q: &WindowQuery,
    b: usize,
    opts: ExecOptions,
) -> (Duration, holistic_window::AppendProfile, Table) {
    let n = table.num_rows();
    let base = table.slice_rows(0, b.min(n));
    let mut engine = q.begin_incremental(&base, opts).expect("begin_incremental");
    let mut total = Duration::ZERO;
    let mut acc = holistic_window::AppendProfile::default();
    let mut at = b.min(n);
    while at < n {
        let hi = (at + b).min(n);
        let batch = table.slice_rows(at, hi);
        let (res, d) = time_once(|| engine.append(&batch).expect("append"));
        total += d;
        let p = res.profile;
        // Counters sum across batches; the forest fields are gauges —
        // cumulative (merges, rebuilt elements) or point-in-time (runs).
        acc.appended_rows += p.appended_rows;
        acc.spliced_partitions += p.spliced_partitions;
        acc.recomputed_partitions += p.recomputed_partitions;
        acc.fast_path_rows += p.fast_path_rows;
        acc.fallback_rows += p.fallback_rows;
        acc.strategy_replans += p.strategy_replans;
        acc.evicted_artifacts += p.evicted_artifacts;
        acc.forest_runs = p.forest_runs;
        acc.forest_merges = p.forest_merges;
        acc.forest_rebuilt_elements = p.forest_rebuilt_elements;
        at = hi;
    }
    let out = engine.output_table().expect("output_table");
    (total, acc, out)
}

/// Times full rebuilds at `samples` evenly spaced refresh points and
/// extrapolates the total cost of rebuilding after every one of the
/// `refreshes` batches (rebuild cost is ~linear in the prefix, so an evenly
/// spaced mean is an unbiased per-refresh estimate).
fn run_rebuild(table: &Table, q: &WindowQuery, b: usize, opts: ExecOptions, samples: usize) -> f64 {
    let n = table.num_rows();
    let refreshes = n.div_ceil(b);
    let samples = samples.clamp(1, refreshes);
    let mut sum_ns = 0.0f64;
    for s in 0..samples {
        // Refresh index for this sample: evenly spaced, last sample = final.
        let r = if samples == 1 { refreshes - 1 } else { s * (refreshes - 1) / (samples - 1) };
        let prefix = table.slice_rows(0, ((r + 1) * b).min(n));
        let (_, d) = time_once(|| q.execute_with(&prefix, opts).expect("rebuild"));
        sum_ns += d.as_nanos() as f64;
    }
    sum_ns / samples as f64 * refreshes as f64
}

/// The Wesley & Xu per-row streaming baseline: one sorted array per
/// distinct probe column (`v` for median/p90, `t` for rank), grown by
/// sorted insertion — O(frame) per appended row — with outputs selected /
/// counted from the arrays. Returns total ns for the whole stream.
fn run_perrow(table: &Table) -> f64 {
    let n = table.num_rows();
    let t: Vec<i64> = (0..n)
        .map(|i| match table.column("t").unwrap().get(i) {
            Value::Int(x) => x,
            _ => unreachable!(),
        })
        .collect();
    let v: Vec<i64> = (0..n)
        .map(|i| match table.column("v").unwrap().get(i) {
            Value::Int(x) => x,
            _ => unreachable!(),
        })
        .collect();
    let mut med = vec![0i64; n];
    let mut p90 = vec![0i64; n];
    let mut rk = vec![0usize; n];
    let (_, d) = time_once(|| {
        let mut sv: Vec<i64> = Vec::with_capacity(n);
        let mut st: Vec<i64> = Vec::with_capacity(n);
        for i in 0..n {
            let j = sv.partition_point(|&x| x < v[i]);
            sv.insert(j, v[i]);
            let j = st.partition_point(|&x| x < t[i]);
            st.insert(j, t[i]);
            let s = sv.len();
            med[i] = sv[((0.5 * s as f64).ceil() as usize).clamp(1, s) - 1];
            p90[i] = sv[((0.9 * s as f64).ceil() as usize).clamp(1, s) - 1];
            rk[i] = st.partition_point(|&x| x < t[i]) + 1;
        }
    });
    // Keep the outputs observable so the loop cannot be optimized away.
    assert_eq!(med.len() + p90.len() + rk.len(), 3 * n);
    d.as_nanos() as f64
}

/// Bit-identity between two values (floats by bit pattern, not tolerance).
fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// Asserts the delta API's outputs are bit-identical to from-scratch
/// execution of the same query on the same table under `opts`.
fn assert_bit_identical(table: &Table, q: &WindowQuery, b: usize, opts: ExecOptions, label: &str) {
    let expect = q.execute_with(table, opts).expect("from-scratch");
    let (_, _, got) = run_append(table, q, b, opts);
    for name in ["c", "rn", "rk", "med", "p90"] {
        let (ce, cg) = (expect.column(name).unwrap(), got.column(name).unwrap());
        for row in 0..table.num_rows() {
            assert!(
                bits_eq(&ce.get(row), &cg.get(row)),
                "[{label}] column {name} row {row}: delta {} vs from-scratch {}",
                cg.get(row),
                ce.get(row)
            );
        }
    }
}

fn main() {
    let n = env_usize("N", 1_000_000);
    let b = env_usize("B", 1_000).max(1);
    let rebuild_samples = env_usize("REBUILD_SAMPLES", 16);
    let emit_json = std::env::args().any(|a| a == "--json");
    let check = n >= 500_000;
    let opts = ExecOptions::default();

    println!("# append_ext: delta API vs rebuild-per-refresh, n={n}, b={b}, growing frame");

    let table = make_table(n, 42);
    let q = query();

    // Correctness first: all eight configs at a reduced size, the default
    // config at full size.
    let nc = n.min(20_000);
    let small = table.slice_rows(0, nc);
    for cfg in ExecOptions::all_configs() {
        assert_bit_identical(&small, &q, b.min(nc.max(1)), cfg, &cfg.label());
    }
    println!("# bit-identity: all 8 configs at n={nc} OK");

    let (append_d, profile, out) = run_append(&table, &q, b, opts);
    assert_eq!(out.column("med").unwrap().len(), n);
    assert_eq!(
        profile.recomputed_partitions, 0,
        "monotone splice-eligible stream must stay on the fast path"
    );
    let append_ns = append_d.as_nanos() as f64;
    let full = q.execute_with(&table, opts).expect("full run");
    for name in ["c", "rn", "rk", "med", "p90"] {
        let (ce, cg) = (full.column(name).unwrap(), out.column(name).unwrap());
        for row in 0..n {
            assert!(bits_eq(&ce.get(row), &cg.get(row)), "full-size identity: {name} row {row}");
        }
    }
    println!("# bit-identity: default config at n={n} OK");

    let rebuild_ns = run_rebuild(&table, &q, b, opts, rebuild_samples);
    let perrow_ns = run_perrow(&table);

    let rows = [("append", append_ns), ("rebuild", rebuild_ns), ("perrow", perrow_ns)];
    println!("# {:<8} {:>12} {:>10}", "algo", "ns/row", "vs append");
    for (name, ns) in rows {
        println!("  {:<8} {:>12.1} {:>9.2}x", name, ns / n as f64, ns / append_ns);
    }
    let amort = profile.forest_rebuilt_elements as f64 / n.max(1) as f64;
    println!(
        "# forest: {} runs, {} merges, {:.2} run-merge rewrites per input row (all forests); \
         {} spliced / {} recomputed refreshes, {} replans",
        profile.forest_runs,
        profile.forest_merges,
        amort,
        profile.spliced_partitions,
        profile.recomputed_partitions,
        profile.strategy_replans
    );

    let mut failed = false;
    if check {
        if append_ns * 5.0 > rebuild_ns {
            println!(
                "CHECK FAILED: append ({:.1} ns/row) not >=5x faster than rebuild ({:.1} ns/row)",
                append_ns / n as f64,
                rebuild_ns / n as f64
            );
            failed = true;
        }
        if append_ns >= perrow_ns {
            println!(
                "CHECK FAILED: append ({:.1} ns/row) does not beat per-row baseline ({:.1} ns/row)",
                append_ns / n as f64,
                perrow_ns / n as f64
            );
            failed = true;
        }
        if !failed {
            println!(
                "# checks OK: append {:.1}x vs rebuild, {:.1}x vs per-row",
                rebuild_ns / append_ns,
                perrow_ns / append_ns
            );
        }
    } else {
        println!("# n < 500k: headline checks skipped (smoke run)");
    }

    if emit_json {
        let workload = "append_stream/grow".to_string();
        let records = vec![
            BenchRecord::new(&workload, n, "append", append_ns / n as f64)
                .with("batch", b as f64)
                .with("forest_runs", profile.forest_runs as f64)
                .with("forest_merges", profile.forest_merges as f64)
                .with("rewrites_per_element", amort)
                .with("speedup_vs_rebuild", rebuild_ns / append_ns)
                .with("speedup_vs_perrow", perrow_ns / append_ns),
            BenchRecord::new(&workload, n, "rebuild", rebuild_ns / n as f64)
                .with("batch", b as f64)
                .with("sampled_refreshes", rebuild_samples as f64),
            BenchRecord::new(&workload, n, "perrow", perrow_ns / n as f64).with("batch", b as f64),
        ];
        let path = json::write("append_ext", &records).expect("write json");
        println!("# wrote {}", path.display());
    }

    if failed {
        std::process::exit(1);
    }
}
