//! Ablation study of the design choices DESIGN.md calls out (not a paper
//! figure — supplementary evidence for §4.2/§5.1's claims):
//!
//! * **fractional cascading**: with pointers (O(log n) per query) vs a full
//!   binary search on every level (O((log n)²), Figure 2's strawman);
//! * **integer width**: u32 vs u64 trees (§5.1 claims narrower integers help
//!   via memory bandwidth);
//! * **task-based parallelization penalty**: the redundant warm-up work a
//!   stateful algorithm performs under task splitting, measured directly as
//!   a work ratio (machine-independent, unlike wall-clock speedups).

use holistic_bench::json::{self, BenchRecord};
use holistic_bench::workloads::{random_ints, sliding_frames};
use holistic_bench::{env_usize, mtps, time_once};
use holistic_core::{MergeSortTree, MstParams};

fn main() {
    let n = env_usize("N", 500_000);
    let emit_json = std::env::args().any(|a| a == "--json");
    let mut records: Vec<BenchRecord> = Vec::new();
    let vals64 = random_ints(n, 9);
    let vals_u32: Vec<u32> = vals64.iter().map(|&v| (v as u32) ^ (1 << 31)).collect();
    let vals_u64: Vec<u64> = vals_u32.iter().map(|&v| v as u64).collect();
    let frames = sliding_frames(n, n / 20);

    println!("# Ablation study, n={n}, frame = 5% of n, count_below probes");

    // --- fractional cascading ---
    println!("\n## fractional cascading (query phase only; identical trees)");
    println!("   note: with k = 32 the cascaded refinement window (~k) is as wide as");
    println!("   the lower levels' runs, so cascading only pays on the upper levels —");
    println!("   k = 4 shows the full effect (cf. Figure 13's preference for small k).");
    for (label, params) in [
        ("f=32 k=32, cascading", MstParams::default().serial()),
        ("f=32 k=32, no cascading", MstParams::default().serial().no_cascading()),
        ("f=32 k=4,  cascading", MstParams::new(32, 4).serial()),
        ("f=32 k=4,  no cascading", MstParams::new(32, 4).serial().no_cascading()),
        ("f=4  k=4,  cascading", MstParams::new(4, 4).serial()),
        ("f=4  k=4,  no cascading", MstParams::new(4, 4).serial().no_cascading()),
    ] {
        let tree = MergeSortTree::<u32>::build(&vals_u32, params);
        let (_, d) = time_once(|| {
            let mut acc = 0usize;
            for (i, &(a, b)) in frames.iter().enumerate() {
                acc = acc.wrapping_add(tree.count_below(a, b, vals_u32[i]));
            }
            acc
        });
        println!(
            "{label:<32} probe: {:>8.1} ms ({:.3} Mprobe/s)",
            d.as_secs_f64() * 1e3,
            mtps(n, d)
        );
        records.push(BenchRecord::new("cascading", n, label, d.as_nanos() as f64 / n as f64));
    }

    // --- integer width ---
    println!("\n## integer width (u32 vs u64 trees, same data)");
    {
        let t32 = MergeSortTree::<u32>::build(&vals_u32, MstParams::default().serial());
        let (_, d32) = time_once(|| {
            let mut acc = 0usize;
            for (i, &(a, b)) in frames.iter().enumerate() {
                acc = acc.wrapping_add(t32.count_below(a, b, vals_u32[i]));
            }
            acc
        });
        let t64 = MergeSortTree::<u64>::build(&vals_u64, MstParams::default().serial());
        let (_, d64) = time_once(|| {
            let mut acc = 0usize;
            for (i, &(a, b)) in frames.iter().enumerate() {
                acc = acc.wrapping_add(t64.count_below(a, b, vals_u64[i]));
            }
            acc
        });
        let s32 = t32.stats();
        let s64 = t64.stats();
        println!(
            "u32 tree: probe {:>8.1} ms, {:>6.1} MB   u64 tree: probe {:>8.1} ms, {:>6.1} MB",
            d32.as_secs_f64() * 1e3,
            s32.bytes as f64 / 1e6,
            d64.as_secs_f64() * 1e3,
            s64.bytes as f64 / 1e6,
        );
        records.push(
            BenchRecord::new("int_width", n, "u32", d32.as_nanos() as f64 / n as f64)
                .with("tree_mb", s32.bytes as f64 / 1e6),
        );
        records.push(
            BenchRecord::new("int_width", n, "u64", d64.as_nanos() as f64 / n as f64)
                .with("tree_mb", s64.bytes as f64 / 1e6),
        );
    }

    // --- task-parallelization work ratio ---
    println!("\n## task-based parallelization penalty (redundant warm-up work, §3.2)");
    println!("   counted in add/remove operations — machine independent");
    for w in [500usize, 5_000, 20_000, 100_000] {
        let frames = sliding_frames(n, w);
        let task = 20_000usize;
        // Useful sliding work: every row enters and leaves once.
        let useful: usize = 2 * n;
        // Warm-up: each task re-adds its first frame.
        let warmup: usize = frames.iter().step_by(task).map(|&(a, b)| b - a).sum();
        println!(
            "frame {w:>7}: warm-up/useful = {:>6.2}x  ({} tasks x avg first-frame {})",
            warmup as f64 / useful as f64,
            n.div_ceil(task),
            warmup / n.div_ceil(task).max(1),
        );
        records.push(
            BenchRecord::new(&format!("task_warmup/w{w}"), n, "work_ratio", f64::NAN)
                .with("warmup_over_useful", warmup as f64 / useful as f64),
        );
    }
    println!("# the ratio grows linearly with the frame size: task-parallel stateful");
    println!("# algorithms do O(frame) redundant work per task — O(n^2) for O(n) frames.");

    if emit_json {
        let path = json::write("ablation", &records).expect("write json");
        println!("# wrote {}", path.display());
    }
}
