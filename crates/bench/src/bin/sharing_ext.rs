//! Supplementary experiment: cross-call preprocessing-artifact sharing.
//!
//! The paper evaluates each window function in isolation; real queries
//! routinely compute several holistic functions over one OVER clause. The
//! plan → build → probe executor builds every preprocessing product (inner
//! sort, merge sort trees, distinct prep) once per partition and shares it
//! across calls. This binary quantifies that: a 4-holistic-call query —
//! median, rank, framed LEAD and COUNT(DISTINCT), with rank and LEAD over
//! one shared inner ORDER BY — timed with the shared cache on and off,
//! asserting identical results. Output is one JSON object per line.

use holistic_bench::json::{self, BenchRecord};
use holistic_bench::{env_usize, time_best};
use holistic_tpch::lineitem;
use holistic_window::frame::{FrameBound, FrameSpec};
use holistic_window::{
    col, lit, CacheStats, Column, ExecOptions, FunctionCall, SortKey, Table, WindowQuery,
    WindowSpec,
};

fn query(window: i64) -> WindowQuery {
    let inner = || vec![SortKey::asc(col("price"))];
    WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("date")), SortKey::asc(col("pos"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(window - 1)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::median(col("price")).named("med"))
    .call(FunctionCall::rank(inner()).named("rnk"))
    .call(FunctionCall::lead(col("price"), 1, lit(-1i64)).order_by(inner()).named("ld"))
    .call(FunctionCall::count_distinct(col("part")).named("cd"))
}

fn counters_json(c: &CacheStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"inner_sorts\":{},\"mst_builds\":{},\"segtree_builds\":{}}}",
        c.hits, c.misses, c.inner_sorts, c.mst_builds, c.segtree_builds
    )
}

fn main() {
    let n = env_usize("N", 50_000);
    let window = env_usize("W", n / 20) as i64;
    let reps = env_usize("REPS", 3);
    let emit_json = std::env::args().any(|a| a == "--json");

    let li = lineitem(n, 42);
    let table = Table::new(vec![
        ("date", Column::ints(li.shipdate.iter().map(|&d| d as i64).collect())),
        ("pos", Column::ints((0..n as i64).collect())),
        ("price", Column::ints(li.extendedprice.clone())),
        ("part", Column::ints(li.partkey.clone())),
    ])
    .unwrap();
    let q = query(window.max(1));

    let shared_opts = ExecOptions::default();
    let private_opts = ExecOptions::default().no_sharing();

    // Warm-up + correctness: both modes must produce identical tables.
    let (shared_out, shared_profile) = q.execute_profiled(&table, shared_opts).unwrap();
    let (private_out, private_profile) = q.execute_profiled(&table, private_opts).unwrap();
    for name in ["med", "rnk", "ld", "cd"] {
        assert_eq!(
            shared_out.column(name).unwrap().to_values(),
            private_out.column(name).unwrap().to_values(),
            "column {name} differs between shared and private caches"
        );
    }

    let (_, shared_d) = time_best(reps, || q.execute_with(&table, shared_opts).unwrap());
    let (_, private_d) = time_best(reps, || q.execute_with(&table, private_opts).unwrap());
    let shared_ms = shared_d.as_secs_f64() * 1e3;
    let private_ms = private_d.as_secs_f64() * 1e3;

    println!(
        "{{\"experiment\":\"sharing_ext\",\"n\":{},\"window\":{},\"calls\":4,\
         \"shared_ms\":{:.3},\"private_ms\":{:.3},\"speedup\":{:.3},\
         \"shared_counters\":{},\"private_counters\":{},\"identical\":true}}",
        n,
        window,
        shared_ms,
        private_ms,
        private_ms / shared_ms,
        counters_json(&shared_profile.cache),
        counters_json(&private_profile.cache),
    );

    if emit_json {
        let workload = format!("sharing/w{window}");
        let records = vec![
            BenchRecord::new(&workload, n, "shared", shared_d.as_nanos() as f64 / n as f64)
                .with("cache_hits", shared_profile.cache.hits as f64)
                .with("mst_builds", shared_profile.cache.mst_builds as f64)
                .with("speedup_vs_private", private_ms / shared_ms),
            BenchRecord::new(&workload, n, "private", private_d.as_nanos() as f64 / n as f64)
                .with("cache_hits", private_profile.cache.hits as f64)
                .with("mst_builds", private_profile.cache.mst_builds as f64),
        ];
        let path = json::write("sharing_ext", &records).expect("write json");
        println!("# wrote {}", path.display());
    }
}
