//! Supplementary experiment: framed DENSE_RANK via the range tree (§4.4).
//!
//! The paper derives that DENSE_RANK needs a 3-dimensional range count and
//! quotes O(n (log n)²) time and space for a range tree, but does not
//! implement or measure it. This binary does: runtime scaling (the ratio
//! for doubled input should be ×~2.4 for n log² n), the space blow-up
//! relative to a merge sort tree, and a comparison against naive
//! re-evaluation.

use holistic_bench::json::{self, BenchRecord};
use holistic_bench::workloads::{sliding_frames, sorted_lineitem};
use holistic_bench::{env_usize, mtps, time_once};
use holistic_core::{dense_codes, prev_idcs_by_key, MergeSortTree, MstParams};
use holistic_rangetree::RangeTree3;

/// Framed DENSE_RANK on raw arrays: dense group ids + previous occurrence +
/// 3-d count (mirrors `holistic-window`'s evaluator without engine overhead).
fn rangetree_dense_rank(keys: &[i64], frames: &[(usize, usize)], parallel: bool) -> Vec<usize> {
    let dc = dense_codes(keys, parallel);
    let gids: Vec<u32> = dc.group_id.iter().map(|&g| g as u32).collect();
    let prev: Vec<u32> = prev_idcs_by_key(&gids, parallel).iter().map(|&p| p as u32).collect();
    let rt = RangeTree3::build(&gids, &prev, parallel);
    frames
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| rt.count(a, b.max(a), gids[i], a as u32 + 1) + 1)
        .collect()
}

fn naive_dense_rank(keys: &[i64], frames: &[(usize, usize)]) -> Vec<usize> {
    frames
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| {
            let mut smaller: Vec<i64> =
                keys[a..b.max(a)].iter().copied().filter(|&k| k < keys[i]).collect();
            smaller.sort_unstable();
            smaller.dedup();
            smaller.len() + 1
        })
        .collect()
}

fn main() {
    let n0 = env_usize("N", 50_000);
    let emit_json = std::env::args().any(|a| a == "--json");
    let mut records: Vec<BenchRecord> = Vec::new();
    println!("# Supplementary: framed DENSE_RANK via range tree (paper §4.4, sketched only)");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "n", "rt_ms", "rt_Mtps", "naive_Mtps", "rt_bytes/elt", "mst_bytes/elt"
    );
    let mut prev_time: Option<f64> = None;
    for n in [n0, 2 * n0, 4 * n0] {
        let data = sorted_lineitem(n, 42);
        let keys = &data.extendedprice;
        let frames = sliding_frames(n, n / 20);
        let (rt_out, d) = time_once(|| rangetree_dense_rank(keys, &frames, true));
        let rt_ms = d.as_secs_f64() * 1e3;
        let rt_tps = mtps(n, d);
        // Naive only at the smallest size (quadratic).
        let naive_tps = if n == n0 {
            let (naive_out, dn) = time_once(|| naive_dense_rank(keys, &frames));
            assert_eq!(rt_out, naive_out, "range tree disagrees with naive");
            records.push(BenchRecord::new("dense_rank", n, "naive", {
                dn.as_nanos() as f64 / n as f64
            }));
            format!("{:.3}", mtps(n, dn))
        } else {
            "skip".to_string()
        };
        // Space: range tree vs a plain MST on the same data.
        let dc = dense_codes(keys, true);
        let gids: Vec<u32> = dc.group_id.iter().map(|&g| g as u32).collect();
        let prev: Vec<u32> = prev_idcs_by_key(&gids, true).iter().map(|&p| p as u32).collect();
        let rt = RangeTree3::build(&gids, &prev, true);
        let mst = MergeSortTree::<u32>::build(&gids, MstParams::default());
        println!(
            "{:<10} {:>12.1} {:>12.3} {:>14} {:>14.1} {:>12.1}",
            n,
            rt_ms,
            rt_tps,
            naive_tps,
            rt.bytes() as f64 / n as f64,
            mst.stats().bytes as f64 / n as f64,
        );
        records.push(
            BenchRecord::new("dense_rank", n, "rangetree", d.as_nanos() as f64 / n as f64)
                .with("rt_bytes_per_element", rt.bytes() as f64 / n as f64)
                .with("mst_bytes_per_element", mst.stats().bytes as f64 / n as f64),
        );
        if let Some(p) = prev_time {
            println!("#   growth for doubled n: {:.2}x (theory n log^2 n: ~2.3-2.5x)", rt_ms / p);
        }
        prev_time = Some(rt_ms);
    }
    println!("# space: O(n log^2 n) range tree vs O(n log n) merge sort tree, as Table 1 predicts");

    if emit_json {
        let path = json::write("dense_rank_ext", &records).expect("write json");
        println!("# wrote {}", path.display());
    }
}
