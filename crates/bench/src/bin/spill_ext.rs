//! Supplementary experiment: budgeted execution with spillable MST arenas.
//!
//! Runs a 3-holistic-call query (median, COUNT(DISTINCT), framed rank) over
//! a partitioned table twice — unbudgeted, then under a memory budget small
//! enough that merge-sort-tree arenas must spill to temp files — and
//! asserts the two outputs are **bit-identical** and that the governed peak
//! resident footprint stayed within 1.25× the budget. `BUDGET=0` (the
//! default) derives a budget automatically as ~85% of one partition's
//! artifact bytes, which forces parking and re-faulting without starving
//! the non-spillable artifacts. Output is one JSON object per line;
//! `--json` also writes `bench_results/BENCH_spill_ext.json`.

use holistic_bench::json::{self, BenchRecord};
use holistic_bench::{env_usize, time_best};
use holistic_window::frame::{FrameBound, FrameSpec};
use holistic_window::{
    col, lit, Column, ExecOptions, FunctionCall, SortKey, SpillStats, Strategy, Table, Value,
    WindowQuery, WindowSpec,
};

fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn spill_json(s: &SpillStats) -> String {
    format!(
        "{{\"bytes_spilled\":{},\"evictions\":{},\"refaults\":{},\"refault_bytes\":{},\
         \"peak_resident\":{}}}",
        s.bytes_spilled, s.evictions, s.refaults, s.refault_bytes, s.peak_resident
    )
}

fn main() {
    let n = env_usize("N", 400_000);
    let parts = env_usize("PARTS", 8).max(1);
    let budget_env = env_usize("BUDGET", 0) as u64;
    let reps = env_usize("REPS", 3);
    let emit_json = std::env::args().any(|a| a == "--json");

    let g: Vec<i64> = (0..n).map(|i| (i % parts) as i64).collect();
    let t: Vec<i64> = (0..n as i64).collect();
    let v: Vec<i64> =
        (0..n).map(|i| ((i as u64).wrapping_mul(2654435761) % 100_000) as i64).collect();
    let table =
        Table::new(vec![("g", Column::ints(g)), ("t", Column::ints(t)), ("v", Column::ints(v))])
            .unwrap();

    let window = (n / parts / 8).max(4) as i64;
    let q = WindowQuery::over(
        WindowSpec::new()
            .partition_by(vec![col("g")])
            .order_by(vec![SortKey::asc(col("t"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(window)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::median(col("v")).named("med"))
    .call(FunctionCall::count_distinct(col("v")).named("cd"))
    .call(FunctionCall::rank(vec![SortKey::desc(col("v"))]).named("r"));

    // The MST strategy is forced so the spillable artifact actually exists
    // in every partition (the adaptive chooser is free to pick cheaper
    // evaluators at small n, which would make the spill path vacuous).
    let base = ExecOptions::serial().force_strategy(Strategy::Mst);

    let (reference, base_profile) = q.execute_profiled(&table, base).unwrap();
    let total = base_profile.cache.bytes_built;
    let budget = if budget_env > 0 { budget_env } else { total / parts as u64 * 85 / 100 };
    let budgeted = base.memory_budget(budget);

    let (out, spill_profile) = q.execute_profiled(&table, budgeted).unwrap();
    for name in ["med", "cd", "r"] {
        let (a, b) =
            (reference.column(name).unwrap().to_values(), out.column(name).unwrap().to_values());
        for (row, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(bits_eq(x, y), "column {name} row {row}: {x} != {y} under budget {budget}");
        }
    }
    let spill = spill_profile.spill;
    assert!(
        spill.peak_resident <= budget * 5 / 4,
        "peak resident {} exceeds 1.25x budget {budget}",
        spill.peak_resident
    );
    if budget_env == 0 {
        assert!(spill.bytes_spilled > 0, "auto budget {budget} produced no spill at n={n}");
    }

    let (_, base_d) = time_best(reps, || q.execute_with(&table, base).unwrap());
    let (_, budget_d) = time_best(reps, || q.execute_with(&table, budgeted).unwrap());
    let base_ms = base_d.as_secs_f64() * 1e3;
    let budget_ms = budget_d.as_secs_f64() * 1e3;

    println!(
        "{{\"experiment\":\"spill_ext\",\"n\":{n},\"parts\":{parts},\"window\":{window},\
         \"bytes_built\":{total},\"budget\":{budget},\
         \"unbudgeted_ms\":{base_ms:.3},\"budgeted_ms\":{budget_ms:.3},\
         \"slowdown\":{:.3},\"spill\":{},\"identical\":true}}",
        budget_ms / base_ms,
        spill_json(&spill),
    );

    if emit_json {
        let workload = format!("spill/p{parts}");
        let records = vec![
            BenchRecord::new(&workload, n, "unbudgeted", base_d.as_nanos() as f64 / n as f64)
                .with("bytes_built", total as f64),
            BenchRecord::new(&workload, n, "budgeted", budget_d.as_nanos() as f64 / n as f64)
                .with("budget", budget as f64)
                .with("bytes_spilled", spill.bytes_spilled as f64)
                .with("evictions", spill.evictions as f64)
                .with("refaults", spill.refaults as f64)
                .with("peak_resident", spill.peak_resident as f64)
                .with("slowdown_vs_unbudgeted", budget_ms / base_ms),
        ];
        let path = json::write("spill_ext", &records).expect("write json");
        println!("# wrote {}", path.display());
    }
}
