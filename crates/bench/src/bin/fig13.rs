//! Figure 13 — runtime of a windowed rank for different fanout (f) and
//! cascading-pointer sampling (k) parameters, single-threaded, on uniformly
//! distributed random integers.
//!
//! Expected shape (§6.6): a valley around moderate f and k — f = 16, k = 4 is
//! fastest, but f = k = 32 is within a few percent while using far less
//! memory; very small f (deep trees) and very large k (wide refinement
//! scans) both hurt; f = 256 with k = 1 is the worst corner. The memory
//! table shows the exponential payoff of larger fanouts.

use holistic_bench::json::{self, BenchRecord};
use holistic_bench::workloads::sliding_frames;
use holistic_bench::{algos, env_usize, time_once};
use holistic_core::{MergeSortTree, MstParams};

fn main() {
    // Default scaled down for the single-core runner; N=1000000 reproduces
    // the paper's exact setting.
    let n = env_usize("N", 300_000);
    let emit_json = std::env::args().any(|a| a == "--json");
    let mut records: Vec<BenchRecord> = Vec::new();
    let vals = holistic_bench::workloads::random_ints(n, 7);
    let frames = sliding_frames(n, n / 20);

    let fanouts = [2usize, 4, 8, 16, 32, 64, 128, 256];
    let samplings = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

    println!("# Figure 13: windowed rank runtime (s) on {n} random ints, single-threaded");
    print!("{:>6} |", "f\\k");
    for &k in &samplings {
        print!("{k:>8}");
    }
    println!();
    for &f in &fanouts {
        print!("{f:>6} |");
        for &k in &samplings {
            let params = MstParams::new(f, k).serial();
            let (_, d) = time_once(|| algos::mst_rank(&vals, &frames, params));
            print!("{:>8.2}", d.as_secs_f64());
            records.push(
                BenchRecord::new("rank_params", n, &format!("f{f}_k{k}"), {
                    d.as_nanos() as f64 / n as f64
                })
                .with("fanout", f as f64)
                .with("sampling", k as f64),
            );
        }
        println!();
    }

    println!("\n# memory (bytes per input element: data + pointers, u32 trees)");
    print!("{:>6} |", "f\\k");
    for &k in &[4usize, 32] {
        print!("{k:>10}");
    }
    println!();
    let mem_n = n.min(1_000_000);
    let mem_vals: Vec<u32> = (0..mem_n as u32).collect();
    for &f in &[16usize, 32] {
        print!("{f:>6} |");
        for &k in &[4usize, 32] {
            let t = MergeSortTree::<u32>::build(&mem_vals, MstParams::new(f, k).serial());
            let s = t.stats();
            print!("{:>10.2}", s.bytes as f64 / mem_n as f64);
            records.push(
                BenchRecord::new("tree_memory", mem_n, &format!("f{f}_k{k}"), f64::NAN)
                    .with("bytes_per_element", s.bytes as f64 / mem_n as f64),
            );
        }
        println!();
    }
    println!("# paper: f=16,k=4 fastest but 12.4 GB at 100M elements; f=k=32 chosen (4.4 GB)");

    if emit_json {
        let path = json::write("fig13", &records).expect("write json");
        println!("# wrote {}", path.display());
    }
}
