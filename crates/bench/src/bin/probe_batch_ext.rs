//! Supplementary experiment: compiled expression programs + block-batched
//! MST probe kernels (DESIGN.md §3.4).
//!
//! Two claims, measured separately:
//!
//! * **Block probes.** The probe phase answers frames in blocks of ~256
//!   rows: one level-synchronous sweep per tree level issues warm-up reads
//!   for the whole block before any partition-point search depends on them,
//!   hiding cache-miss latency behind software pipelining. On Fig.-12-style
//!   jittered frames (where cursor galloping cannot help) this must be
//!   ≥ 2× faster than the scalar cursor path at n = 1M.
//! * **Compiled expressions.** Frame-bound expressions are compiled once
//!   into stack-VM programs and evaluated columnarly during frame
//!   resolution. On expression-bound frame specs the resolve phase must be
//!   ≥ 3× faster than the per-row recursive interpreter.
//!
//! Before any timing, every engine configuration — the standard 8-config
//! matrix plus the interpreted-expression and unbatched-probe escape
//! hatches — is asserted bit-identical on the full workload. Human-readable
//! table always; `--json` additionally writes
//! `bench_results/BENCH_probe_batch_ext.json`.
//!
//! Env knobs: `N` (rows, default 1M), `REPS` (default 3), `ASSERT_SPEEDUP`
//! (default on for N ≥ 200k; `ASSERT_SPEEDUP=0` disables). CI smoke runs
//! with tiny `N`, where the ratio assertions are skipped automatically.

use holistic_bench::env_usize;
use holistic_bench::json::{self, BenchRecord};
use holistic_tpch::lineitem;
use holistic_window::frame::{FrameBound, FrameSpec};
use holistic_window::{
    col, lit, Column, ExecOptions, ExecProfile, FunctionCall, SortKey, Strategy, Table,
    WindowQuery, WindowSpec,
};

/// Runs the two configurations `reps` times each, *alternating* between them
/// so clock-frequency drift hits both sides equally, and keeps each side's
/// profile with the smallest `pick` field.
fn best_pair(
    q: &WindowQuery,
    table: &Table,
    opts_a: ExecOptions,
    opts_b: ExecOptions,
    reps: usize,
    pick: impl Fn(&ExecProfile) -> std::time::Duration,
) -> (ExecProfile, ExecProfile) {
    let mut best_a: Option<ExecProfile> = None;
    let mut best_b: Option<ExecProfile> = None;
    for _ in 0..reps.max(1) {
        let (_, p) = q.execute_profiled(table, opts_a).unwrap();
        if best_a.as_ref().is_none_or(|b| pick(&p) < pick(b)) {
            best_a = Some(p);
        }
        let (_, p) = q.execute_profiled(table, opts_b).unwrap();
        if best_b.as_ref().is_none_or(|b| pick(&p) < pick(b)) {
            best_b = Some(p);
        }
    }
    (best_a.unwrap(), best_b.unwrap())
}

fn main() {
    let n = env_usize("N", 1_000_000);
    let reps = env_usize("REPS", 3);
    let emit_json = std::env::args().any(|a| a == "--json");
    // The ≥2×/≥3× gates only hold where the workload is big enough for the
    // asymptotics to show; tiny CI smokes run the full code path unasserted.
    let assert_speedup = env_usize("ASSERT_SPEEDUP", usize::from(n >= 200_000)) != 0;

    let li = lineitem(n, 42);
    // Fig. 12's jitter at full amplitude: both frame edges jump
    // pseudo-randomly by up to n/8 rows from one row to the next, so the
    // cursor path's galloping finds no locality to exploit — exactly the
    // regime where block-level software pipelining must carry the probe.
    let amp = (n as i64 / 8).max(499);
    let ja: Vec<i64> = li.extendedprice.iter().map(|&p| (p * 7703).rem_euclid(amp)).collect();
    let jb: Vec<i64> = li.extendedprice.iter().map(|&p| (p * 7717).rem_euclid(amp)).collect();
    let table = Table::new(vec![
        ("pos", Column::ints((0..n as i64).collect())),
        ("price", Column::ints(li.extendedprice.clone())),
        ("part", Column::ints(li.partkey.clone())),
        ("ja", Column::ints(ja)),
        ("jb", Column::ints(jb)),
        ("m", Column::ints(vec![1; n])),
    ])
    .unwrap();

    // ---- Workload A: jittered-frame probe phase, block vs scalar. --------
    let jitter_spec = WindowSpec::new()
        .order_by(vec![SortKey::asc(col("pos"))])
        .frame(FrameSpec::rows(FrameBound::Preceding(col("ja")), FrameBound::Following(col("jb"))));
    let probe_calls: Vec<(&str, FunctionCall)> = vec![
        ("median", FunctionCall::median(col("price")).named("out")),
        ("rank", FunctionCall::rank(vec![SortKey::asc(col("price"))]).named("out")),
        ("distinct", FunctionCall::count_distinct(col("part")).named("out")),
    ];
    // Serial + forced MST isolates the probe kernel from scheduling and
    // strategy noise; block vs scalar is the only difference.
    let block_opts = ExecOptions::serial().force_strategy(Strategy::Mst);
    let scalar_opts = block_opts.unbatched_probes();

    // ---- Workload B: expression-bound frame resolution, VM vs interpreter.
    // The paper's §2.2 stock-order shape: both bounds are arithmetic over
    // two columns and three literals — eight interpreter nodes per row.
    let expr_spec =
        WindowSpec::new().order_by(vec![SortKey::asc(col("pos"))]).frame(FrameSpec::rows(
            FrameBound::Preceding(col("m").mul(col("price").mul(lit(7703i64)).rem(lit(499i64)))),
            FrameBound::Following(col("m").mul(col("price").mul(lit(7717i64)).rem(lit(493i64)))),
        ));
    // COUNT(*) keeps the probe trivial so resolve dominates the comparison.
    let expr_q = WindowQuery::over(expr_spec).call(FunctionCall::count_star().named("out"));
    let compiled_opts = ExecOptions::serial();
    let interp_opts = ExecOptions::serial().interpreted_exprs();

    // ---- Correctness gate: every config bit-identical, then time. --------
    let mut gate_configs: Vec<ExecOptions> = ExecOptions::all_configs().to_vec();
    gate_configs.push(ExecOptions::serial().interpreted_exprs());
    gate_configs.push(ExecOptions::default().interpreted_exprs());
    gate_configs.push(ExecOptions::serial().unbatched_probes());
    gate_configs.push(ExecOptions::default().unbatched_probes());
    gate_configs.push(ExecOptions::serial().interpreted_exprs().unbatched_probes());
    for (wl, q) in std::iter::once(("expr_bound", expr_q.clone())).chain(
        probe_calls
            .iter()
            .map(|(cn, c)| (*cn, WindowQuery::over(jitter_spec.clone()).call(c.clone()))),
    ) {
        let reference = q.execute_with(&table, ExecOptions::serial()).unwrap();
        for &opts in &gate_configs {
            let got = q.execute_with(&table, opts).unwrap();
            assert_eq!(
                reference.column("out").unwrap().to_values(),
                got.column("out").unwrap().to_values(),
                "{} differs under {}",
                wl,
                opts.label()
            );
        }
    }
    println!(
        "# probe_batch_ext: all {} configs bit-identical on every workload",
        gate_configs.len()
    );

    let mut records = Vec::new();

    // ---- Time workload A. ------------------------------------------------
    println!("# probe-phase ns/row on jittered frames (n={n}), block vs scalar probes");
    println!(
        "{:<10} | {:>10} {:>10} {:>8} | {:>12} {:>14}",
        "call", "block", "scalar", "speedup", "block_calls", "block_queries"
    );
    let mut worst_probe_speedup = f64::INFINITY;
    for (call_name, call) in &probe_calls {
        let q = WindowQuery::over(jitter_spec.clone()).call(call.clone());
        let (blk, scl) = best_pair(&q, &table, block_opts, scalar_opts, reps, |p| p.probe);
        let blk_ns = blk.probe.as_nanos() as f64 / n as f64;
        let scl_ns = scl.probe.as_nanos() as f64 / n as f64;
        let speedup = scl_ns / blk_ns;
        worst_probe_speedup = worst_probe_speedup.min(speedup);
        assert!(blk.probe_kernel.block_queries > 0, "block path not exercised for {call_name}");
        assert_eq!(scl.probe_kernel.block_calls, 0, "scalar path ran block kernels");
        println!(
            "{:<10} | {:>10.1} {:>10.1} {:>8.3} | {:>12} {:>14}",
            call_name,
            blk_ns,
            scl_ns,
            speedup,
            blk.probe_kernel.block_calls,
            blk.probe_kernel.block_queries
        );
        records.push(
            BenchRecord::new(&format!("jitter/{call_name}"), n, "block", blk_ns)
                .with("block_calls", blk.probe_kernel.block_calls as f64)
                .with("block_queries", blk.probe_kernel.block_queries as f64)
                .with("speedup_vs_scalar", speedup),
        );
        records.push(BenchRecord::new(&format!("jitter/{call_name}"), n, "scalar", scl_ns));
    }

    // ---- Time workload B. ------------------------------------------------
    let (cmp, itp) = best_pair(&expr_q, &table, compiled_opts, interp_opts, reps, |p| p.resolve);
    let cmp_ns = cmp.resolve.as_nanos() as f64 / n as f64;
    let itp_ns = itp.resolve.as_nanos() as f64 / n as f64;
    let resolve_speedup = itp_ns / cmp_ns;
    assert!(cmp.expr_vm.vm_rows > 0, "compiled path evaluated no rows through the VM");
    assert_eq!(cmp.expr_vm.vm_fallbacks, 0, "unexpected VM fallback on the bench workload");
    assert_eq!(itp.expr_vm.vm_rows, 0, "interpreted path ran the VM");
    println!("# frame-resolution ns/row on expression-bound frames, compiled VM vs interpreter");
    println!(
        "{:<10} | {:>10} {:>10} {:>8} | {:>10} {:>10}",
        "workload", "compiled", "interp", "speedup", "vm_rows", "programs"
    );
    println!(
        "{:<10} | {:>10.1} {:>10.1} {:>8.3} | {:>10} {:>10}",
        "expr_bound",
        cmp_ns,
        itp_ns,
        resolve_speedup,
        cmp.expr_vm.vm_rows,
        cmp.expr_vm.programs_compiled
    );
    records.push(
        BenchRecord::new("expr_bound/resolve", n, "compiled", cmp_ns)
            .with("vm_rows", cmp.expr_vm.vm_rows as f64)
            .with("programs_compiled", cmp.expr_vm.programs_compiled as f64)
            .with("speedup_vs_interp", resolve_speedup),
    );
    records.push(
        BenchRecord::new("expr_bound/resolve", n, "interp", itp_ns)
            .with("interpreted_rows", itp.expr_vm.interpreted_rows as f64),
    );

    if assert_speedup {
        assert!(
            worst_probe_speedup >= 2.0,
            "block probe speedup {worst_probe_speedup:.2}× below the 2× bar"
        );
        assert!(
            resolve_speedup >= 3.0,
            "compiled-resolve speedup {resolve_speedup:.2}× below the 3× bar"
        );
        println!(
            "# speedup gates passed: probe {worst_probe_speedup:.2}× (bar 2×), resolve {resolve_speedup:.2}× (bar 3×)"
        );
    } else {
        println!("# speedup gates skipped (tiny n)");
    }

    if emit_json {
        let path = json::write("probe_batch_ext", &records).unwrap();
        println!("# wrote {}", path.display());
    }
}
