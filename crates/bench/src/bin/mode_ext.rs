//! Extension experiment (not a paper figure): framed MODE evaluated with the
//! √-decomposition range mode index vs Wesley & Xu's incremental mode and
//! naive recomputation — completing the aggregate set of Wesley & Xu that merge
//! sort trees cannot express (§3.1).
//!
//! Expected shape: for monotonic frames the incremental algorithm wins
//! (O(1) updates); the range-mode index is frame-size independent; under
//! non-monotonic frames the incremental algorithm degrades like in
//! Figure 12 while the index does not care.

use holistic_baselines::incremental;
use holistic_bench::json::{self, BenchRecord};
use holistic_bench::workloads::{nonmonotonic_frames, sliding_frames, sorted_lineitem};
use holistic_bench::{env_usize, mtps, time_once};
use holistic_rangemode::RangeModeIndex;

fn naive_mode(values: &[u32], frames: &[(usize, usize)]) -> Vec<Option<u32>> {
    frames
        .iter()
        .map(|&(a, b)| {
            if a >= b {
                return None;
            }
            let mut counts = values[a..b].to_vec();
            counts.sort_unstable();
            let mut best = (0u32, 0u32);
            let mut i = 0;
            while i < counts.len() {
                let mut j = i + 1;
                while j < counts.len() && counts[j] == counts[i] {
                    j += 1;
                }
                let c = (j - i) as u32;
                if c > best.1 {
                    best = (counts[i], c);
                }
                i = j;
            }
            Some(best.0)
        })
        .collect()
}

fn main() {
    let n = env_usize("N", 100_000);
    let emit_json = std::env::args().any(|a| a == "--json");
    let mut records: Vec<BenchRecord> = Vec::new();
    let data = sorted_lineitem(n, 42);
    // Mode over supplier-ish ids: reuse partkey hashes compressed to ids.
    let mut ids: Vec<u32> = data.partkey_hash.iter().map(|&h| (h % 2003) as u32).collect();
    let u = 2003;
    ids.truncate(n);
    let ids64: Vec<i64> = ids.iter().map(|&v| v as i64).collect();

    println!("# Extension: framed MODE throughput (Mtuples/s), n={n}, {u} distinct values");
    println!("{:<22} | {:>12} {:>12} {:>10}", "frames", "rangemode", "incremental", "naive");

    for (label, frames) in [
        ("sliding w=500", sliding_frames(n, 500)),
        ("sliding w=5%n", sliding_frames(n, n / 20)),
        ("non-monotonic m=1", nonmonotonic_frames(&ids64, 1.0)),
    ] {
        let (idx_out, d_build_probe) = time_once(|| {
            let idx = RangeModeIndex::build(&ids, u);
            frames.iter().map(|&(a, b)| idx.query(a, b).map(|(v, _)| v)).collect::<Vec<_>>()
        });
        let rm = mtps(n, d_build_probe);
        let (inc_out, d) = time_once(|| incremental::mode(&ids64, &frames));
        let inc = mtps(n, d);
        let (naive_out, d) = time_once(|| naive_mode(&ids, &frames));
        let nv = mtps(n, d);
        // Cross-verify counts agree (values may differ only on ties — our
        // implementations share the smallest-value tie-break, so compare
        // directly).
        for i in 0..n {
            assert_eq!(idx_out[i].map(|v| v as i64), inc_out[i], "rangemode vs incremental at {i}");
            assert_eq!(idx_out[i], naive_out[i], "rangemode vs naive at {i}");
        }
        println!("{:<22} | {:>12.3} {:>12.3} {:>10.3}", label, rm, inc, nv);
        let workload = format!("mode/{}", label.replace(' ', "_"));
        for (algo, tput) in [("rangemode", rm), ("incremental", inc), ("naive", nv)] {
            records.push(BenchRecord::new(&workload, n, algo, 1e3 / tput));
        }
    }
    println!("# (all three algorithms verified to produce identical modes)");

    if emit_json {
        let path = json::write("mode_ext", &records).expect("write json");
        println!("# wrote {}", path.display());
    }
}
