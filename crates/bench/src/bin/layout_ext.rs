//! Supplementary experiment: arena-backed flat MST layout vs. the per-run
//! allocation baseline (DESIGN.md "Memory layout").
//!
//! The merge sort tree's logical structure (levels of sorted runs with
//! cascading sample pointers) says nothing about its physical layout. The
//! seed engine allocated every run — keys and pointers — as its own vector;
//! the arena layout stores all levels' keys in one allocation and all
//! cascading pointers in flat struct-of-arrays slabs, with run boundaries
//! reduced to offset/length arithmetic, and prefetches the next level's
//! cascaded landing run during probe descent. Both layouts run the same
//! merge kernel, so run *contents* are bit-identical; only locality and
//! allocation count differ. This binary measures both phases on three
//! array-level workloads (count, select, annotated distinct-aggregate) and
//! then asserts engine-level bit-identity across all eight execution
//! configurations on a window query that exercises every tree family.
//!
//! Human-readable tables always; `--json` additionally writes
//! `bench_results/BENCH_layout_ext.json`. `N=...` rescales (default 1M).

use holistic_bench::json::{self, BenchRecord};
use holistic_bench::{env_usize, time_best};
use holistic_core::aggregate::SumI64;
use holistic_core::layout_baseline::{PerRunAnnotated, PerRunMst};
use holistic_core::{AnnotatedMst, MergeSortTree, MstParams};
use holistic_tpch::lineitem;
use holistic_window::frame::{FrameBound, FrameSpec};
use holistic_window::{
    col, lit, Column, ExecOptions, FunctionCall, SortKey, Table, Value, WindowQuery, WindowSpec,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Trailing ROWS frame `[i.saturating_sub(w-1), i+1)` — the monotonic shape
/// dominating real workloads (fig. 11's sweep fixes the width the same way).
#[inline]
fn frame(i: usize, w: usize) -> (usize, usize) {
    (i.saturating_sub(w - 1), i + 1)
}

/// Per-row probe time in nanoseconds: best of `reps` full passes.
fn probe_ns(n: usize, reps: usize, mut pass: impl FnMut() -> u64) -> f64 {
    // The checksum keeps the optimizer honest across passes.
    let (_, d) = time_best(reps, &mut pass);
    d.as_nanos() as f64 / n as f64
}

fn main() {
    let n = env_usize("N", 1_000_000);
    let w = env_usize("W", 1024).max(1);
    let reps = env_usize("REPS", 3);
    let engine_n = env_usize("ENGINE_N", n.min(100_000));
    let emit_json = std::env::args().any(|a| a == "--json");

    let mut rng = StdRng::seed_from_u64(11);
    // Keys: ~n/16 distinct values, the regime where distinct aggregates and
    // rank codes both have work to do.
    let vals: Vec<u32> = (0..n).map(|_| rng.gen_range(0..(n as u32 / 16).max(1))).collect();
    // Shifted previous-occurrence indices (Algorithm 1) for the annotated
    // workload, plus i64 payloads.
    let mut last = vec![0u32; (n as u32 / 16).max(1) as usize];
    let prev: Vec<u32> = vals
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let p = last[v as usize];
            last[v as usize] = i as u32 + 1;
            p
        })
        .collect();
    let payloads: Vec<i64> = vals.iter().map(|&v| v as i64 % 97).collect();

    let params = MstParams::default().serial();
    let params_nopf = params.no_prefetch();

    println!("# layout_ext: arena vs per-run MST layout, n={n} w={w} (serial, u32 keys)");

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut rec = |workload: &str, algorithm: &str, ns: f64, extra: &[(&str, f64)]| {
        let mut r = BenchRecord::new(workload, n, algorithm, ns);
        for &(k, v) in extra {
            r = r.with(k, v);
        }
        records.push(r);
    };

    // ---- Build phase -----------------------------------------------------
    let (arena, arena_build) = time_best(reps, || MergeSortTree::<u32>::build(&vals, params));
    let (perrun, perrun_build) = time_best(reps, || PerRunMst::<u32>::build(&vals, params));
    let arena_ns = arena_build.as_nanos() as f64 / n as f64;
    let perrun_ns = perrun_build.as_nanos() as f64 / n as f64;
    println!(
        "build            | arena {arena_ns:>7.1} ns/row ({} allocs) | per-run {perrun_ns:>7.1} ns/row ({} allocs) | speedup {:.3}",
        1,
        perrun.allocations(),
        perrun_ns / arena_ns,
    );
    rec("build", "arena", arena_ns, &[("allocations", 1.0), ("bytes", arena.arena_bytes() as f64)]);
    rec("build", "per-run", perrun_ns, &[("allocations", perrun.allocations() as f64)]);

    // ---- Probe: count_below (framed rank shape) --------------------------
    let arena_nopf = MergeSortTree::<u32>::build(&vals, params_nopf);
    for i in (0..n).step_by((n / 1000).max(1)) {
        let (a, b) = frame(i, w);
        assert_eq!(
            arena.count_below(a, b, vals[i]),
            perrun.count_below(a, b, vals[i]),
            "layouts disagree on count_below at row {i}"
        );
    }
    let count_pass = |t: &MergeSortTree<u32>| {
        let mut acc = 0u64;
        for (i, &v) in vals.iter().enumerate() {
            let (a, b) = frame(i, w);
            acc = acc.wrapping_add(t.count_below(a, b, v) as u64);
        }
        acc
    };
    let count_base = {
        let mut acc = 0u64;
        for (i, &v) in vals.iter().enumerate() {
            let (a, b) = frame(i, w);
            acc = acc.wrapping_add(perrun.count_below(a, b, v) as u64);
        }
        acc
    };
    let c_arena = probe_ns(n, reps, || count_pass(&arena));
    let c_nopf = probe_ns(n, reps, || count_pass(&arena_nopf));
    let c_perrun = probe_ns(n, reps, || {
        let mut acc = 0u64;
        for (i, &v) in vals.iter().enumerate() {
            let (a, b) = frame(i, w);
            acc = acc.wrapping_add(perrun.count_below(a, b, v) as u64);
        }
        assert_eq!(acc, count_base);
        acc
    });
    println!(
        "probe count      | arena {c_arena:>7.1} | arena-nopf {c_nopf:>7.1} | per-run {c_perrun:>7.1} ns/row | speedup {:.3}",
        c_perrun / c_arena
    );
    rec("count_below", "arena", c_arena, &[]);
    rec("count_below", "arena-noprefetch", c_nopf, &[]);
    rec("count_below", "per-run", c_perrun, &[]);

    // ---- Probe: select (framed median shape) -----------------------------
    // Selection runs over a permutation array (§4.5): the tree's values are
    // a bijection of 0..n, so a value range [a, b) always holds b-a rows.
    let mut sel_perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        sel_perm.swap(i, rng.gen_range(0..=i));
    }
    let sel_arena = MergeSortTree::<u32>::build(&sel_perm, params);
    let sel_nopf = MergeSortTree::<u32>::build(&sel_perm, params_nopf);
    let sel_perrun = PerRunMst::<u32>::build(&sel_perm, params);
    for i in (0..n).step_by((n / 1000).max(1)) {
        let (a, b) = frame(i, w);
        assert_eq!(
            sel_arena.select_in_range(a, b, (b - a) / 2),
            sel_perrun.select_in_range(a, b, (b - a) / 2),
            "layouts disagree on select at row {i}"
        );
    }
    let s_arena = probe_ns(n, reps, || {
        let mut acc = 0u64;
        for i in 0..n {
            let (a, b) = frame(i, w);
            acc = acc.wrapping_add(sel_arena.select_in_range(a, b, (b - a) / 2).unwrap() as u64);
        }
        acc
    });
    let s_nopf = probe_ns(n, reps, || {
        let mut acc = 0u64;
        for i in 0..n {
            let (a, b) = frame(i, w);
            acc = acc.wrapping_add(sel_nopf.select_in_range(a, b, (b - a) / 2).unwrap() as u64);
        }
        acc
    });
    let s_perrun = probe_ns(n, reps, || {
        let mut acc = 0u64;
        for i in 0..n {
            let (a, b) = frame(i, w);
            acc = acc.wrapping_add(sel_perrun.select_in_range(a, b, (b - a) / 2).unwrap() as u64);
        }
        acc
    });
    println!(
        "probe select     | arena {s_arena:>7.1} | arena-nopf {s_nopf:>7.1} | per-run {s_perrun:>7.1} ns/row | speedup {:.3}",
        s_perrun / s_arena
    );
    rec("select", "arena", s_arena, &[]);
    rec("select", "arena-noprefetch", s_nopf, &[]);
    rec("select", "per-run", s_perrun, &[]);

    // ---- Annotated tree: distinct-aggregate shape ------------------------
    let (ann, ann_build) =
        time_best(reps, || AnnotatedMst::<u32, SumI64>::build(&prev, &payloads, params));
    let (ann_base, ann_base_build) =
        time_best(reps, || PerRunAnnotated::<u32, SumI64>::build(&prev, &payloads, params));
    for i in (0..n).step_by((n / 1000).max(1)) {
        let (a, b) = frame(i, w);
        assert_eq!(
            ann.aggregate_below(a, b, a as u32 + 1),
            ann_base.aggregate_below(a, b, a as u32 + 1),
            "layouts disagree on aggregate_below at row {i}"
        );
    }
    let ab_arena = ann_build.as_nanos() as f64 / n as f64;
    let ab_perrun = ann_base_build.as_nanos() as f64 / n as f64;
    let a_arena = probe_ns(n, reps, || {
        let mut acc = 0i128;
        for i in 0..n {
            let (a, b) = frame(i, w);
            acc = acc.wrapping_add(ann.aggregate_below(a, b, a as u32 + 1).0);
        }
        acc as u64
    });
    let a_perrun = probe_ns(n, reps, || {
        let mut acc = 0i128;
        for i in 0..n {
            let (a, b) = frame(i, w);
            acc = acc.wrapping_add(ann_base.aggregate_below(a, b, a as u32 + 1).0);
        }
        acc as u64
    });
    println!(
        "annotated build  | arena {ab_arena:>7.1} | per-run {ab_perrun:>7.1} ns/row | speedup {:.3}",
        ab_perrun / ab_arena
    );
    println!(
        "annotated probe  | arena {a_arena:>7.1} | per-run {a_perrun:>7.1} ns/row | speedup {:.3}",
        a_perrun / a_arena
    );
    rec("annotated-build", "arena", ab_arena, &[("bytes", ann.bytes() as f64)]);
    rec("annotated-build", "per-run", ab_perrun, &[]);
    rec("annotated-probe", "arena", a_arena, &[]);
    rec("annotated-probe", "per-run", a_perrun, &[]);

    // ---- Engine bit-identity across all eight configurations ------------
    // A query exercising code trees, permutation trees, distinct trees and
    // float aggregation; every config must produce bit-identical output
    // (floats compared by bits) regardless of layout-internal choices.
    let li = lineitem(engine_n, 42);
    let table = Table::new(vec![
        ("date", Column::ints(li.shipdate.iter().map(|&d| d as i64).collect())),
        ("pos", Column::ints((0..engine_n as i64).collect())),
        ("price", Column::floats(li.extendedprice.iter().map(|&p| p as f64 / 100.0).collect())),
        ("part", Column::ints(li.partkey.clone())),
    ])
    .unwrap();
    let q = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("date")), SortKey::asc(col("pos"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(499i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::median(col("price")).named("med"))
    .call(FunctionCall::rank(vec![SortKey::asc(col("price"))]).named("r"))
    .call(FunctionCall::count_distinct(col("part")).named("cd"));
    let bits = |t: &Table, name: &str| -> Vec<u64> {
        t.column(name)
            .unwrap()
            .to_values()
            .iter()
            .map(|v| match v {
                Value::Float(x) => x.to_bits(),
                Value::Int(x) => *x as u64,
                Value::Null => u64::MAX,
                v => panic!("unexpected value type {v}"),
            })
            .collect()
    };
    let configs = ExecOptions::all_configs();
    let (reference, profile) = q.execute_profiled(&table, configs[0]).unwrap();
    for opts in &configs[1..] {
        let out = q.execute_with(&table, *opts).unwrap();
        for name in ["med", "r", "cd"] {
            assert_eq!(
                bits(&reference, name),
                bits(&out, name),
                "config {} differs from {} on column {name}",
                opts.label(),
                configs[0].label()
            );
        }
    }
    println!("# engine: all {} configs bit-identical on med/r/cd at n={engine_n}", configs.len());
    println!("# per-artifact memory ({}; shallow bytes):", configs[0].label());
    for a in &profile.artifacts {
        println!("#   {:<18} {:>3} builds {:>12} bytes", a.label, a.builds, a.bytes);
        records.push(
            BenchRecord::new(&format!("artifact/{}", a.label), engine_n, "arena", 0.0)
                .with("builds", a.builds as f64)
                .with("bytes", a.bytes as f64),
        );
    }

    if emit_json {
        let path = json::write("layout_ext", &records).unwrap();
        println!("# wrote {}", path.display());
    }
}
