//! Machine-readable bench output: `--json` mode for the figure binaries.
//!
//! Each run writes `bench_results/BENCH_<name>.json` — a JSON array of
//! records, one per (workload, n, algorithm) cell, with the normalized
//! per-row cost in nanoseconds plus free-form extra counters. The format is
//! hand-rolled (the container carries no serde) but stable: CI and the
//! experiment notes both consume it.

use std::fs;
use std::io;
use std::path::PathBuf;

/// One measured cell of a benchmark grid.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Workload label (e.g. `rows_monotonic`).
    pub workload: String,
    /// Input size in rows.
    pub n: usize,
    /// Algorithm / configuration label (e.g. `cursor`, `stateless`).
    pub algorithm: String,
    /// Normalized cost: nanoseconds of probe (or total) time per input row.
    pub ns_per_row: f64,
    /// Extra numeric fields appended verbatim (counter names must be
    /// JSON-safe identifiers).
    pub extra: Vec<(String, f64)>,
}

impl BenchRecord {
    /// A record with no extra counters.
    pub fn new(workload: &str, n: usize, algorithm: &str, ns_per_row: f64) -> Self {
        Self {
            workload: workload.to_string(),
            n,
            algorithm: algorithm.to_string(),
            ns_per_row,
            extra: Vec::new(),
        }
    }

    /// Appends an extra numeric field.
    pub fn with(mut self, key: &str, value: f64) -> Self {
        self.extra.push((key.to_string(), value));
        self
    }
}

/// Escapes a string for a JSON string literal (labels are plain ASCII in
/// practice; this keeps the writer safe regardless).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 so the output is valid JSON (no NaN/inf literals).
fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// Serializes records to a JSON array string.
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"workload\":\"{}\",\"n\":{},\"algorithm\":\"{}\",\"ns_per_row\":{}",
            escape(&r.workload),
            r.n,
            escape(&r.algorithm),
            number(r.ns_per_row),
        ));
        for (k, v) in &r.extra {
            out.push_str(&format!(",\"{}\":{}", escape(k), number(*v)));
        }
        out.push('}');
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// Writes `bench_results/BENCH_<name>.json` relative to the current
/// directory and returns the path.
pub fn write(name: &str, records: &[BenchRecord]) -> io::Result<PathBuf> {
    let dir = PathBuf::from("bench_results");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    fs::write(&path, to_json(records))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_serialize_to_valid_json_shape() {
        let recs = vec![
            BenchRecord::new("rows_monotonic", 1000, "cursor", 12.5).with("gallop_seeded", 42.0),
            BenchRecord::new("rows_jitter", 1000, "stateless", f64::NAN),
        ];
        let s = to_json(&recs);
        assert!(s.starts_with("[\n"));
        assert!(s.trim_end().ends_with(']'));
        assert!(s.contains("\"workload\":\"rows_monotonic\""));
        assert!(s.contains("\"gallop_seeded\":42.000"));
        assert!(s.contains("\"ns_per_row\":null"));
        // Exactly one comma between the two records.
        assert_eq!(s.matches("},\n").count(), 1);
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
