//! Criterion companion of Table 1: build/probe costs of the competing index
//! structures at one size (the `table1` binary measures growth ratios).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use holistic_baselines::ostree::OrderStatisticTree;
use holistic_bench::workloads::random_ints;
use holistic_core::{MergeSortTree, MstParams};
use holistic_segtree::{SegmentTree, SortedListSegTree, SumMonoid};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 100_000;
    let vals = random_ints(n, 3);
    let vals_u32: Vec<u32> = vals.iter().map(|&v| (v as u32) ^ (1 << 31)).collect();

    let mut g = c.benchmark_group("table1_structures");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.throughput(Throughput::Elements(n as u64));

    g.bench_function(BenchmarkId::new("build_merge_sort_tree", n), |b| {
        b.iter(|| black_box(MergeSortTree::<u32>::build(&vals_u32, MstParams::default())))
    });
    g.bench_function(BenchmarkId::new("build_sorted_list_segtree", n), |b| {
        b.iter(|| black_box(SortedListSegTree::build(&vals, true)))
    });
    g.bench_function(BenchmarkId::new("build_segment_tree_sum", n), |b| {
        b.iter(|| black_box(SegmentTree::<SumMonoid>::build(&vals, true)))
    });
    g.bench_function(BenchmarkId::new("build_order_statistic_tree", n), |b| {
        b.iter(|| {
            let mut t = OrderStatisticTree::new();
            for &v in &vals {
                t.insert(v);
            }
            black_box(t.len())
        })
    });

    let mst = MergeSortTree::<u32>::build(&vals_u32, MstParams::default());
    g.bench_function(BenchmarkId::new("probe_mst_count_below", n), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 9973) % n;
            black_box(mst.count_below(i / 2, n - i / 3, vals_u32[i]))
        })
    });
    let slst = SortedListSegTree::build(&vals, true);
    g.bench_function(BenchmarkId::new("probe_segtree_select", n), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 9973) % (n / 2);
            black_box(slst.select(i, i + n / 2, n / 4))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
