//! Criterion companion of Figure 14: the end-to-end framed distinct count
//! through the engine pipeline (per-phase times come from the `fig14`
//! binary; here we pin the end-to-end number).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use holistic_tpch::lineitem;
use holistic_window::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 100_000;
    let table = lineitem(n, 42).to_table();
    let q = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("l_shipdate"))])
            .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
    )
    .call(FunctionCall::count_distinct(col("l_partkey")).named("cd"));

    let mut g = c.benchmark_group("fig14_pipeline");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function(BenchmarkId::new("engine_running_distinct_count", n), |b| {
        b.iter(|| black_box(q.execute(&table).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
