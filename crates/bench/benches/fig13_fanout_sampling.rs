//! Criterion companion of Figure 13: fanout × sampling corners of the
//! parameter grid (the `fig13` binary runs the full grid).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use holistic_bench::algos;
use holistic_bench::workloads::{random_ints, sliding_frames};
use holistic_core::MstParams;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 100_000;
    let vals = random_ints(n, 7);
    let frames = sliding_frames(n, n / 20);
    let mut g = c.benchmark_group("fig13_fanout_sampling");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.throughput(Throughput::Elements(n as u64));
    for (f, k) in [(2usize, 32usize), (16, 4), (32, 32), (256, 1), (256, 1024)] {
        let params = MstParams::new(f, k).serial();
        g.bench_function(BenchmarkId::new("rank", format!("f{f}_k{k}")), |b| {
            b.iter(|| black_box(algos::mst_rank(&vals, &frames, params)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
