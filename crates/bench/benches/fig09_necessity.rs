//! Criterion companion of Figure 9: framed median, native algorithms vs the
//! traditional SQL plans (scaled down; the `fig09` binary runs the paper's
//! exact 20 000-tuple setting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holistic_baselines::{incremental, sqlsim, taskpar};
use holistic_bench::algos;
use holistic_bench::workloads::{sliding_frames, sorted_lineitem};
use holistic_core::MstParams;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 5_000;
    let w = 250;
    let data = sorted_lineitem(n, 42);
    let values = &data.extendedprice;
    let frames = sliding_frames(n, w);

    let mut g = c.benchmark_group("fig09_framed_median");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function(BenchmarkId::new("sql_correlated_subquery", n), |b| {
        b.iter(|| black_box(sqlsim::correlated_subquery_median(values, w)))
    });
    g.bench_function(BenchmarkId::new("sql_self_join", n), |b| {
        b.iter(|| black_box(sqlsim::self_join_median(values, w)))
    });
    g.bench_function(BenchmarkId::new("client_tool", n), |b| {
        b.iter(|| black_box(sqlsim::client_tool_median(values, w)))
    });
    g.bench_function(BenchmarkId::new("native_naive", n), |b| {
        b.iter(|| black_box(taskpar::naive_percentile(values, &frames, 0.5)))
    });
    g.bench_function(BenchmarkId::new("native_incremental", n), |b| {
        b.iter(|| black_box(incremental::percentile(values, &frames, 0.5)))
    });
    g.bench_function(BenchmarkId::new("native_merge_sort_tree", n), |b| {
        b.iter(|| black_box(algos::mst_percentile(values, &frames, 0.5, MstParams::default())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
