//! Criterion companion of Figure 11: framed median vs frame size. The MST
//! must stay flat while naive/incremental degrade with the frame.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use holistic_baselines::{incremental, taskpar};
use holistic_bench::algos;
use holistic_bench::workloads::{sliding_frames, sorted_lineitem};
use holistic_core::MstParams;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 50_000;
    let data = sorted_lineitem(n, 42);
    let vals = &data.extendedprice;
    let mut g = c.benchmark_group("fig11_frame_size");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.throughput(Throughput::Elements(n as u64));
    for w in [10usize, 1_000, 50_000] {
        let frames = sliding_frames(n, w);
        g.bench_function(BenchmarkId::new("mst", w), |b| {
            b.iter(|| black_box(algos::mst_percentile(vals, &frames, 0.5, MstParams::default())))
        });
        g.bench_function(BenchmarkId::new("ostree", w), |b| {
            b.iter(|| {
                black_box(taskpar::ostree_percentile(
                    vals,
                    &frames,
                    0.5,
                    taskpar::HYPER_TASK_SIZE,
                    true,
                ))
            })
        });
        if w <= 1_000 {
            g.bench_function(BenchmarkId::new("incremental", w), |b| {
                b.iter(|| black_box(incremental::percentile(vals, &frames, 0.5)))
            });
            g.bench_function(BenchmarkId::new("naive", w), |b| {
                b.iter(|| black_box(taskpar::naive_percentile(vals, &frames, 0.5)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
