//! Criterion companion of Figure 10: algorithm throughput vs input size
//! (frame = 5 % of n; the `fig10` binary runs the full sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use holistic_baselines::taskpar;
use holistic_bench::algos;
use holistic_bench::workloads::{sliding_frames, sorted_lineitem};
use holistic_core::MstParams;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_scaling");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    for n in [20_000usize, 80_000] {
        let data = sorted_lineitem(n, 42);
        let frames = sliding_frames(n, n / 20);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(BenchmarkId::new("median_mst", n), |b| {
            b.iter(|| {
                black_box(algos::mst_percentile(
                    &data.extendedprice,
                    &frames,
                    0.5,
                    MstParams::default(),
                ))
            })
        });
        g.bench_function(BenchmarkId::new("median_ostree_taskpar", n), |b| {
            b.iter(|| {
                black_box(taskpar::ostree_percentile(
                    &data.extendedprice,
                    &frames,
                    0.5,
                    taskpar::HYPER_TASK_SIZE,
                    true,
                ))
            })
        });
        g.bench_function(BenchmarkId::new("rank_mst", n), |b| {
            b.iter(|| {
                black_box(algos::mst_rank(&data.extendedprice, &frames, MstParams::default()))
            })
        });
        g.bench_function(BenchmarkId::new("lead_mst", n), |b| {
            b.iter(|| {
                black_box(algos::mst_lead(&data.extendedprice, &frames, MstParams::default()))
            })
        });
        g.bench_function(BenchmarkId::new("distinct_mst", n), |b| {
            b.iter(|| {
                black_box(algos::mst_distinct_count(
                    &data.partkey_hash,
                    &frames,
                    MstParams::default(),
                ))
            })
        });
        g.bench_function(BenchmarkId::new("distinct_incremental_taskpar", n), |b| {
            b.iter(|| {
                black_box(taskpar::distinct_count(
                    &data.partkey_hash,
                    &frames,
                    taskpar::HYPER_TASK_SIZE,
                    true,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
