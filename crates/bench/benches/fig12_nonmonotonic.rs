//! Criterion companion of Figure 12: non-monotonic frames. The incremental
//! algorithm must collapse as soon as m > 0; the MST must not care.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use holistic_baselines::{incremental, taskpar};
use holistic_bench::algos;
use holistic_bench::workloads::{nonmonotonic_frames, sorted_lineitem};
use holistic_core::MstParams;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 50_000;
    let data = sorted_lineitem(n, 42);
    let vals = &data.extendedprice;
    let mut g = c.benchmark_group("fig12_nonmonotonic");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.throughput(Throughput::Elements(n as u64));
    for m_pct in [0u32, 50, 100] {
        let frames = nonmonotonic_frames(vals, m_pct as f64 / 100.0);
        g.bench_function(BenchmarkId::new("mst", m_pct), |b| {
            b.iter(|| black_box(algos::mst_percentile(vals, &frames, 0.5, MstParams::default())))
        });
        g.bench_function(BenchmarkId::new("incremental", m_pct), |b| {
            b.iter(|| black_box(incremental::percentile(vals, &frames, 0.5)))
        });
        g.bench_function(BenchmarkId::new("naive", m_pct), |b| {
            b.iter(|| black_box(taskpar::naive_percentile(vals, &frames, 0.5)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
