#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "CI OK"
