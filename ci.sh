#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> bench smoke (tiny n; asserts cursor/stateless and shared/private identity)"
N=3000 W=64 REPS=1 cargo run --release -q -p holistic-bench --bin probe_locality_ext -- --json
N=3000 W=64 REPS=1 cargo run --release -q -p holistic-bench --bin sharing_ext

echo "CI OK"
