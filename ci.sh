#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (strategy crates, explicit gate)"
cargo clippy -p holistic-baselines -p holistic-strategies --all-targets -- -D warnings

echo "==> cargo clippy (expression VM + block-kernel crates, explicit gate)"
cargo clippy -p holistic-window -p holistic-core --all-targets -- -D warnings

echo "==> cargo clippy (SQL frontend, explicit gate)"
cargo clippy -p holistic-sql --all-targets -- -D warnings

echo "==> cargo doc (workspace, deny warnings; holistic-sql denies missing_docs)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> SQL frontend tests + error-message snapshots"
cargo test -q -p holistic-sql

echo "==> SQL quickstart example (the README snippet must not rot)"
cargo run --release -q --example sql_quickstart > /dev/null

echo "==> strategy equivalence (adaptive vs forced-MST, serial vs parallel)"
cargo test --release -q -p holistic-window --test strategy_equivalence

echo "==> fuzz smoke (differential: naive vs adaptive/forced configs, fixed seed)"
# Deterministic and time-budgeted; failures print a --replay command.
cargo run --release -q -p holistic-fuzz --bin fuzz -- \
  --cases 600 --seed 0xC0FFEE --max-n 40 --time-budget-secs 120

echo "==> fuzz smoke (append delta API: bit-identity vs from-scratch, fixed seed)"
cargo run --release -q -p holistic-fuzz --bin fuzz -- \
  --append --cases 600 --seed 0xC0FFEE --max-n 40 --time-budget-secs 120

echo "==> fuzz panic sweep (invalid specs must Error, never panic; incl. tiny-budget configs)"
cargo run --release -q -p holistic-fuzz --bin fuzz -- --panic-sweep --cases 400 --seed 0x5EED

echo "==> fuzz smoke (budget mode: bit-identical under budget or typed BudgetExceeded)"
cargo run --release -q -p holistic-fuzz --bin fuzz -- \
  --cases 500 --seed 0xB4D6E7 --max-n 40 --budget 8192 --time-budget-secs 120

echo "==> fuzz smoke (sql-roundtrip: print → parse → plan structural + session bit-identity)"
cargo run --release -q -p holistic-fuzz --bin fuzz -- \
  --sql-roundtrip --cases 500 --seed 0xC0FFEE --max-n 40 --time-budget-secs 120

echo "==> bench smoke (tiny n; asserts cursor/stateless and shared/private identity)"
N=3000 W=64 REPS=1 cargo run --release -q -p holistic-bench --bin probe_locality_ext -- --json
N=3000 W=64 REPS=1 cargo run --release -q -p holistic-bench --bin sharing_ext -- --json
# Asserts append outputs bit-identical across all 8 configs and vs from-scratch;
# the ≥5×-vs-rebuild and beats-per-row gates self-skip below n = 500k.
N=6000 B=200 REBUILD_SAMPLES=4 cargo run --release -q -p holistic-bench --bin append_ext -- --json
N=4000 W=64 REPS=1 ENGINE_N=2000 cargo run --release -q -p holistic-bench --bin layout_ext -- --json
N=4000 REPS=1 cargo run --release -q -p holistic-bench --bin crossover_ext -- --json
# Asserts all 13 configs (incl. VM/block-probe escape hatches) bit-identical;
# the ≥2×/≥3× speedup gates self-skip at tiny n.
N=3000 REPS=1 cargo run --release -q -p holistic-bench --bin probe_batch_ext -- --json
# Asserts budgeted execution bit-identical to unbudgeted, peak resident within
# 1.25x budget, and that the auto-derived budget actually spills.
N=60000 PARTS=6 BUDGET=0 REPS=1 cargo run --release -q -p holistic-bench --bin spill_ext -- --json

echo "CI OK"
