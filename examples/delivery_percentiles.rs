//! §1's second motivating query: the moving 99th percentile of delivery
//! times.
//!
//! ```sql
//! select l_shipdate,
//!   percentile_disc(0.99, order by l_receiptdate - l_shipdate) over w
//! from lineitem
//! window w as (order by l_shipdate
//!              range between '1 week' preceding and current row)
//! ```
//!
//! ```bash
//! cargo run --release --example delivery_percentiles
//! ```

use holistic_windows::prelude::*;
use holistic_windows::tpch::lineitem;

fn main() -> holistic_windows::window::Result<()> {
    let n = 50_000;
    let table = lineitem(n, 1).to_table();

    let delivery_days = col("l_receiptdate").sub(col("l_shipdate"));
    let out = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("l_shipdate"))])
            .frame(FrameSpec::range(FrameBound::Preceding(lit(7i64)), FrameBound::CurrentRow)),
    )
    .call(
        FunctionCall::percentile_disc(0.99, SortKey::asc(delivery_days.clone()))
            .named("p99_delivery_days"),
    )
    .call(FunctionCall::percentile_disc(0.5, SortKey::asc(delivery_days)).named("median_delivery"))
    .call(FunctionCall::count_star().named("orders_in_week"))
    .execute(&table)?;

    // Print a weekly sample of the series, in ship-date order.
    let mut rows: Vec<usize> = (0..table.num_rows()).collect();
    let ship = table.column("l_shipdate")?;
    rows.sort_by_key(|&i| ship.get(i).as_i64());
    println!(
        "{:<12} {:>15} {:>16} {:>15}",
        "shipdate", "orders_in_week", "p99_delivery_days", "median"
    );
    for &i in rows.iter().step_by(n / 20) {
        println!(
            "{:<12} {:>15} {:>16} {:>15}",
            ship.get(i),
            out.column("orders_in_week")?.get(i),
            out.column("p99_delivery_days")?.get(i),
            out.column("median_delivery")?.get(i),
        );
    }
    println!(
        "\nThe p99 stays near the 30-day generator cap while the median sits\n\
         around 15 days — the tail query SQL:2011 cannot express over a frame."
    );
    Ok(())
}
