//! Quickstart: framed holistic aggregates in a few lines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use holistic_windows::prelude::*;

fn main() -> holistic_windows::window::Result<()> {
    // Daily sales of two stores.
    let table = Table::new(vec![
        ("store", Column::strs(vec!["A", "A", "A", "A", "B", "B", "B", "B"])),
        ("day", Column::ints(vec![1, 2, 3, 4, 1, 2, 3, 4])),
        ("sales", Column::ints(vec![120, 80, 80, 200, 50, 75, 75, 60])),
        ("clerk", Column::ints(vec![7, 8, 7, 9, 1, 1, 2, 1])),
    ])?;

    // One OVER clause, many functions — including the paper's extensions:
    // framed COUNT(DISTINCT), a framed median, and a framed rank with its
    // own ORDER BY.
    let out = WindowQuery::over(
        WindowSpec::new()
            .partition_by(vec![col("store")])
            .order_by(vec![SortKey::asc(col("day"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(2i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::sum(col("sales")).named("moving_sum"))
    .call(FunctionCall::median(col("sales")).named("moving_median"))
    .call(FunctionCall::count_distinct(col("clerk")).named("active_clerks"))
    .call(FunctionCall::rank(vec![SortKey::desc(col("sales"))]).named("sales_rank_in_window"))
    .execute(&table)?;

    println!("store day sales | moving_sum moving_median active_clerks rank");
    for i in 0..table.num_rows() {
        println!(
            "{:>5} {:>3} {:>5} | {:>10} {:>13} {:>13} {:>4}",
            table.column("store")?.get(i),
            table.column("day")?.get(i),
            table.column("sales")?.get(i),
            out.column("moving_sum")?.get(i),
            out.column("moving_median")?.get(i),
            out.column("active_clerks")?.get(i),
            out.column("sales_rank_in_window")?.get(i),
        );
    }
    Ok(())
}
