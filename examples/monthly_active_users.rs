//! §1's first motivating query: monthly-active users over time, as a framed
//! distinct count (explicitly disallowed by SQL:2011; this engine lifts the
//! restriction).
//!
//! ```sql
//! select o_orderdate, count(distinct o_custkey) over w
//! from orders
//! window w as (order by o_orderdate
//!              range between '1 month' preceding and current row)
//! ```
//!
//! ```bash
//! cargo run --release --example monthly_active_users
//! ```

use holistic_windows::prelude::*;
use holistic_windows::tpch::orders_stream;

fn main() -> holistic_windows::window::Result<()> {
    let n = 100_000;
    let table = orders_stream(n, 2_000, 11);

    let out = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("o_orderdate"))])
            .frame(FrameSpec::range(FrameBound::Preceding(lit(30i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::count_distinct(col("o_custkey")).named("mau"))
    .call(FunctionCall::count_star().named("orders_30d"))
    .execute(&table)?;

    println!("{:<12} {:>8} {:>12}  trend", "date", "mau", "orders_30d");
    let mut prev: Option<i64> = None;
    for i in (0..n).step_by(n / 24) {
        let mau = out.column("mau")?.get(i).as_i64().unwrap();
        let trend = match prev {
            Some(p) if mau > p => "▲ growing",
            Some(p) if mau < p => "▼ shrinking",
            Some(_) => "= flat",
            None => "",
        };
        println!(
            "{:<12} {:>8} {:>12}  {}",
            table.column("o_orderdate")?.get(i),
            mau,
            out.column("orders_30d")?.get(i),
            trend,
        );
        prev = Some(mau);
    }
    println!(
        "\n\"How did monthly-active users change over time?\" — answered with a\n\
         single framed COUNT(DISTINCT), O(n log n) end to end."
    );
    Ok(())
}
