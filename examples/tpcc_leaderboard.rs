//! The paper's §2.4 showcase: judging historical TPC-C results against all
//! *previous* submissions with fully composable window functions.
//!
//! ```sql
//! select dbsystem, tps,
//!   count(distinct dbsystem) over w,
//!   rank(order by tps desc) over w,
//!   first_value(tps order by tps desc) over w,
//!   first_value(dbsystem order by tps desc) over w,
//!   lead(tps order by tps desc) over w,
//!   lead(dbsystem order by tps desc) over w
//! from tpcc_results
//! window w as (order by submission_date
//!              range between unbounded preceding and current row)
//! ```
//!
//! ```bash
//! cargo run --release --example tpcc_leaderboard
//! ```

use holistic_windows::prelude::*;
use holistic_windows::tpch::tpcc_results;

fn main() -> holistic_windows::window::Result<()> {
    let table = tpcc_results(24, 2022);

    let w = WindowSpec::new()
        .order_by(vec![SortKey::asc(col("submission_date"))])
        .frame(FrameSpec::range(FrameBound::UnboundedPreceding, FrameBound::CurrentRow));
    let by_tps_desc = || vec![SortKey::desc(col("tps"))];

    let out = WindowQuery::over(w)
        .call(FunctionCall::count_distinct(col("dbsystem")).named("competitors"))
        .call(FunctionCall::rank(by_tps_desc()).named("rank_at_submission"))
        .call(FunctionCall::first_value(col("tps")).order_by(by_tps_desc()).named("best_tps"))
        .call(
            FunctionCall::first_value(col("dbsystem")).order_by(by_tps_desc()).named("best_system"),
        )
        .call(
            FunctionCall::lead(col("tps"), 1, lit(Value::Null))
                .order_by(by_tps_desc())
                .named("next_best_tps"),
        )
        .call(
            FunctionCall::lead(col("dbsystem"), 1, lit(Value::Null))
                .order_by(by_tps_desc())
                .named("next_best_system"),
        )
        .execute(&table)?;

    println!(
        "{:<12} {:>12} {:>8} | {:>11} {:>5} {:>9} {:>12} {:>13} {:>16}",
        "date",
        "dbsystem",
        "tps",
        "competitors",
        "rank",
        "best_tps",
        "best_system",
        "next_best_tps",
        "next_best_system"
    );
    for i in 0..table.num_rows() {
        println!(
            "{:<12} {:>12} {:>8} | {:>11} {:>5} {:>9} {:>12} {:>13} {:>16}",
            table.column("submission_date")?.get(i),
            table.column("dbsystem")?.get(i),
            table.column("tps")?.get(i),
            out.column("competitors")?.get(i),
            out.column("rank_at_submission")?.get(i),
            out.column("best_tps")?.get(i),
            out.column("best_system")?.get(i),
            out.column("next_best_tps")?.get(i),
            out.column("next_best_system")?.get(i),
        );
    }
    println!(
        "\nEach row compares a submission only against earlier ones: the frame\n\
         `RANGE UNBOUNDED PRECEDING .. CURRENT ROW` orders by submission date,\n\
         while every function ranks/selects by its own `ORDER BY tps DESC` —\n\
         the composability the paper proposes (SQL:2011 forbids all of it)."
    );
    Ok(())
}
