//! SQL quickstart: the same engine, driven by SQL text.
//!
//! ```bash
//! cargo run --release --example sql_quickstart
//! ```
//!
//! The query below is illegal in SQL:2011 twice over — a *framed* median
//! and a *framed* `count(DISTINCT ...)` — and also shows a named window
//! shared by all calls (one artifact cache), `FILTER`, a final `ORDER BY`
//! over an alias, and the caret-rendered positional errors.
//! The dialect reference is `SQL.md` at the repository root.

use holistic_sql::SqlSession;
use holistic_windows::window::{Column, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Daily sales of two stores.
    let table = Table::new(vec![
        ("store", Column::strs(vec!["A", "A", "A", "A", "B", "B", "B", "B"])),
        ("day", Column::ints(vec![1, 2, 3, 4, 1, 2, 3, 4])),
        ("sales", Column::ints(vec![120, 80, 80, 200, 50, 75, 75, 60])),
        ("clerk", Column::ints(vec![7, 8, 7, 9, 1, 1, 2, 1])),
    ])?;

    let mut session = SqlSession::new();
    session.register("sales", table);

    let out = session.query(
        "SELECT store, day, \
                sum(sales)            OVER w AS moving_sum, \
                median(sales)         OVER w AS moving_median, \
                count(DISTINCT clerk) OVER w AS active_clerks, \
                rank(ORDER BY sales DESC) OVER w AS rank_in_window, \
                count(*) FILTER (WHERE sales > 70) OVER w AS busy_days \
         FROM sales \
         WINDOW w AS (PARTITION BY store ORDER BY day \
                      ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) \
         ORDER BY store, day",
    )?;

    let headers: Vec<&str> = out.iter().map(|(n, _)| n).collect();
    println!("{}", headers.join(" | "));
    for i in 0..out.num_rows() {
        let row: Vec<String> = out
            .iter()
            .map(|(_, c)| format!("{:>width$}", c.get(i).to_string(), width = 8))
            .collect();
        println!("{}", row.join(" | "));
    }

    // Errors are typed and positional — point at the offending token:
    let err = session
        .query("SELECT median(sales) OVER (ROWS BETWEEN 2 PRECEDING AND) FROM sales")
        .unwrap_err();
    println!("\nA malformed query reports:\n{err}");

    Ok(())
}
