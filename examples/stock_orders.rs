//! §2.2's stock limit-order analysis: non-constant, per-row frame bounds.
//!
//! ```sql
//! select price > median(price) over (
//!     order by placement_time
//!     range between current row and good_for following)
//! from stock_orders
//! ```
//!
//! Each order's frame extends over its own validity interval — frames are
//! *non-monotonic*, which defeats incremental algorithms (§6.5) but leaves
//! the merge sort tree unfazed.
//!
//! ```bash
//! cargo run --release --example stock_orders
//! ```

use holistic_windows::prelude::*;
use holistic_windows::tpch::stock_orders;

fn main() -> holistic_windows::window::Result<()> {
    let table = stock_orders(10_000, 7);

    let out = WindowQuery::over(
        WindowSpec::new().order_by(vec![SortKey::asc(col("placement_time"))]).frame(
            FrameSpec::range(FrameBound::CurrentRow, FrameBound::Following(col("good_for"))),
        ),
    )
    .call(FunctionCall::median(col("price")).named("median_while_valid"))
    .call(FunctionCall::count_star().named("competing_orders"))
    .execute(&table)?;

    let mut above = 0usize;
    let mut below_eq = 0usize;
    println!(
        "{:>6} {:>8} {:>9} | {:>18} {:>16} favorable?",
        "time", "price", "good_for", "median_while_valid", "competing_orders"
    );
    for i in 0..table.num_rows() {
        let price = table.column("price")?.get(i).as_i64().unwrap();
        let med = out.column("median_while_valid")?.get(i).as_i64().unwrap();
        if price > med {
            above += 1;
        } else {
            below_eq += 1;
        }
        if i < 12 {
            println!(
                "{:>6} {:>8} {:>9} | {:>18} {:>16} {}",
                table.column("placement_time")?.get(i),
                price,
                table.column("good_for")?.get(i),
                med,
                out.column("competing_orders")?.get(i),
                if price > med { "yes" } else { "no" },
            );
        }
    }
    println!(
        "\n{above} of {} orders priced above the median of their own validity\n\
         window; {below_eq} at or below. Every frame had different, data-driven\n\
         bounds — the flexibility SQL grants and this paper makes efficient.",
        table.num_rows()
    );
    Ok(())
}
