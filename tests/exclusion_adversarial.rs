//! Adversarial tests for frame exclusion with distinct aggregates and
//! DENSE_RANK — the §4.7 corner the paper glosses over: a value whose only
//! frame occurrences sit inside the excluded hole must not be counted, while
//! one that also occurs outside still counts once. The engine handles this
//! with occurrence-list corrections; these inputs maximize the hole sizes
//! and duplicate densities that stress that code.

use holistic_windows::baselines::naive;
use holistic_windows::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn check(t: &Table, spec: WindowSpec, calls: Vec<FunctionCall>) {
    let mut q = WindowQuery::over(spec);
    for c in calls {
        q = q.call(c);
    }
    let expect = naive::execute(&q, t).unwrap();
    let got = q.execute(t).unwrap();
    for (name, cg) in got.iter() {
        let ce = expect.column(name).unwrap();
        for i in 0..t.num_rows() {
            assert!(
                cg.get(i).sql_eq(&ce.get(i)) || cg.get(i).is_null() && ce.get(i).is_null(),
                "{name} row {i}: engine={} naive={}",
                cg.get(i),
                ce.get(i)
            );
        }
    }
}

fn distinct_calls() -> Vec<FunctionCall> {
    vec![
        FunctionCall::count_distinct(col("v")).named("cd"),
        FunctionCall::sum_distinct(col("v")).named("sd"),
        FunctionCall::avg(col("v")).distinct().named("ad"),
        FunctionCall::dense_rank(vec![SortKey::asc(col("v"))]).named("dr"),
        FunctionCall::mode(col("v")).named("mo"),
    ]
}

/// All rows are peers (constant order key) — EXCLUDE GROUP empties every
/// frame; EXCLUDE TIES leaves only the current row.
#[test]
fn single_giant_peer_group() {
    let n = 200;
    let mut rng = StdRng::seed_from_u64(1);
    let v: Vec<i64> = (0..n).map(|_| rng.gen_range(0..5)).collect();
    let t = Table::new(vec![("k", Column::ints(vec![7; n])), ("v", Column::ints(v))]).unwrap();
    for excl in [FrameExclusion::CurrentRow, FrameExclusion::Group, FrameExclusion::Ties] {
        let spec = WindowSpec::new()
            .order_by(vec![SortKey::asc(col("k"))])
            .frame(FrameSpec::whole_partition().exclude(excl));
        check(&t, spec, distinct_calls());
    }
}

/// Few distinct values, large tie groups in the ORDER BY: holes regularly
/// contain a value's *only* occurrences.
#[test]
fn hole_only_values_are_corrected() {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 300;
    let k: Vec<i64> = (0..n).map(|_| rng.gen_range(0..4)).collect(); // 4 peer groups
    let v: Vec<i64> = (0..n).map(|_| rng.gen_range(0..3)).collect(); // 3 values
    let t = Table::new(vec![("k", Column::ints(k)), ("v", Column::ints(v))]).unwrap();
    for excl in [FrameExclusion::CurrentRow, FrameExclusion::Group, FrameExclusion::Ties] {
        for frame in [
            FrameSpec::whole_partition().exclude(excl),
            FrameSpec::rows(FrameBound::Preceding(lit(50i64)), FrameBound::Following(lit(50i64)))
                .exclude(excl),
            FrameSpec::range(FrameBound::Preceding(lit(1i64)), FrameBound::Following(lit(1i64)))
                .exclude(excl),
        ] {
            let spec = WindowSpec::new().order_by(vec![SortKey::asc(col("k"))]).frame(frame);
            check(&t, spec, distinct_calls());
        }
    }
}

/// Values aligned with peer groups: every value lives entirely inside one
/// hole candidate.
#[test]
fn values_equal_order_keys() {
    let n = 240;
    let k: Vec<i64> = (0..n as i64).map(|i| i / 30).collect(); // 8 groups of 30
    let t = Table::new(vec![
        ("k", Column::ints(k.clone())),
        ("v", Column::ints(k)), // v == k: each value exists only in its group
    ])
    .unwrap();
    for excl in [FrameExclusion::Group, FrameExclusion::Ties] {
        let spec = WindowSpec::new()
            .order_by(vec![SortKey::asc(col("k"))])
            .frame(FrameSpec::whole_partition().exclude(excl));
        check(&t, spec, distinct_calls());
    }
}

/// Exclusion combined with FILTER and NULLs (remapped hole geometry).
#[test]
fn exclusion_with_filter_and_nulls() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 250;
    let k: Vec<i64> = (0..n).map(|_| rng.gen_range(0..6)).collect();
    let v: Vec<Option<i64>> =
        (0..n).map(|_| if rng.gen_bool(0.2) { None } else { Some(rng.gen_range(0..4)) }).collect();
    let f: Vec<i64> = (0..n).map(|_| rng.gen_range(0..3)).collect();
    let t = Table::new(vec![
        ("k", Column::ints(k)),
        ("v", Column::ints_opt(v)),
        ("f", Column::ints(f)),
    ])
    .unwrap();
    for excl in [FrameExclusion::CurrentRow, FrameExclusion::Group, FrameExclusion::Ties] {
        let spec = WindowSpec::new().order_by(vec![SortKey::asc(col("k"))]).frame(
            FrameSpec::rows(FrameBound::Preceding(lit(40i64)), FrameBound::Following(lit(40i64)))
                .exclude(excl),
        );
        let calls: Vec<FunctionCall> =
            distinct_calls().into_iter().map(|c| c.filter(col("f").ne(lit(0i64)))).collect();
        check(&t, spec, calls);
    }
}

/// Degenerate sizes around the hole-correction code paths.
#[test]
fn tiny_partitions_with_exclusion() {
    for n in 1..=6usize {
        let t = Table::new(vec![
            ("k", Column::ints(vec![1; n])),
            ("v", Column::ints((0..n as i64).map(|i| i % 2).collect())),
        ])
        .unwrap();
        for excl in [FrameExclusion::CurrentRow, FrameExclusion::Group, FrameExclusion::Ties] {
            let spec = WindowSpec::new()
                .order_by(vec![SortKey::asc(col("k"))])
                .frame(FrameSpec::whole_partition().exclude(excl));
            check(&t, spec, distinct_calls());
        }
    }
}
