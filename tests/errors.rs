//! Error-path coverage: malformed queries must fail cleanly with the right
//! error, never panic.

use holistic_windows::prelude::*;
use holistic_windows::window::Error;

fn table() -> Table {
    Table::new(vec![
        ("a", Column::ints(vec![3, 1, 2])),
        ("s", Column::strs(vec!["x", "y", "z"])),
        ("f", Column::floats(vec![1.0, 2.0, 3.0])),
    ])
    .unwrap()
}

fn run(spec: WindowSpec, call: FunctionCall) -> Result<Table, Error> {
    WindowQuery::over(spec).call(call).execute(&table())
}

#[test]
fn unknown_column_in_every_position() {
    let base = || WindowSpec::new().order_by(vec![SortKey::asc(col("a"))]);
    assert!(matches!(
        run(base(), FunctionCall::sum(col("zzz"))),
        Err(Error::UnknownColumn(c)) if c == "zzz"
    ));
    assert!(
        run(WindowSpec::new().partition_by(vec![col("nope")]), FunctionCall::count_star()).is_err()
    );
    assert!(run(
        WindowSpec::new().order_by(vec![SortKey::asc(col("nope"))]),
        FunctionCall::count_star()
    )
    .is_err());
    assert!(run(base(), FunctionCall::count_star().filter(col("nope"))).is_err());
    assert!(run(
        base().frame(FrameSpec::rows(FrameBound::Preceding(col("nope")), FrameBound::CurrentRow)),
        FunctionCall::count_star()
    )
    .is_err());
}

#[test]
fn range_frame_restrictions() {
    // Multiple ORDER BY keys with a RANGE offset bound.
    let spec = WindowSpec::new()
        .order_by(vec![SortKey::asc(col("a")), SortKey::asc(col("f"))])
        .frame(FrameSpec::range(FrameBound::Preceding(lit(1i64)), FrameBound::CurrentRow));
    assert!(matches!(run(spec, FunctionCall::count_star()), Err(Error::Unsupported(_))));
    // Non-numeric key.
    let spec = WindowSpec::new()
        .order_by(vec![SortKey::asc(col("s"))])
        .frame(FrameSpec::range(FrameBound::Preceding(lit(1i64)), FrameBound::CurrentRow));
    assert!(matches!(run(spec, FunctionCall::count_star()), Err(Error::Unsupported(_))));
    // RANGE without offsets is fine for any key.
    let spec =
        WindowSpec::new().order_by(vec![SortKey::asc(col("s"))]).frame(FrameSpec::default_frame());
    assert!(run(spec, FunctionCall::count_star()).is_ok());
}

#[test]
fn invalid_frame_bounds() {
    let base = || WindowSpec::new().order_by(vec![SortKey::asc(col("a"))]);
    // Negative offset.
    let spec =
        base().frame(FrameSpec::rows(FrameBound::Preceding(lit(-1i64)), FrameBound::CurrentRow));
    assert!(matches!(run(spec, FunctionCall::count_star()), Err(Error::InvalidFrameBound(_))));
    // NULL offset.
    let spec = base()
        .frame(FrameSpec::rows(FrameBound::Preceding(lit(Value::Null)), FrameBound::CurrentRow));
    assert!(matches!(run(spec, FunctionCall::count_star()), Err(Error::InvalidFrameBound(_))));
    // UNBOUNDED FOLLOWING as a start bound.
    let spec =
        base().frame(FrameSpec::rows(FrameBound::UnboundedFollowing, FrameBound::CurrentRow));
    assert!(run(spec, FunctionCall::count_star()).is_err());
    // UNBOUNDED PRECEDING as an end bound.
    let spec =
        base().frame(FrameSpec::rows(FrameBound::CurrentRow, FrameBound::UnboundedPreceding));
    assert!(run(spec, FunctionCall::count_star()).is_err());
    // String offset.
    let spec =
        base().frame(FrameSpec::rows(FrameBound::Preceding(col("s")), FrameBound::CurrentRow));
    assert!(matches!(run(spec, FunctionCall::count_star()), Err(Error::InvalidFrameBound(_))));
}

#[test]
fn function_argument_validation() {
    let base = || WindowSpec::new().order_by(vec![SortKey::asc(col("a"))]);
    // SUM over strings.
    assert!(matches!(run(base(), FunctionCall::sum(col("s"))), Err(Error::TypeMismatch { .. })));
    // SUM(DISTINCT) over strings.
    assert!(run(base(), FunctionCall::sum_distinct(col("s"))).is_err());
    // percentile fraction out of range.
    assert!(matches!(
        run(base(), FunctionCall::percentile_disc(1.5, SortKey::asc(col("a")))),
        Err(Error::InvalidArgument(_))
    ));
    // NTILE bucket count < 1.
    assert!(matches!(
        run(base(), FunctionCall::ntile(lit(0i64), vec![SortKey::asc(col("a"))])),
        Err(Error::InvalidArgument(_))
    ));
    // NTH_VALUE n < 1.
    assert!(run(base(), FunctionCall::nth_value(col("a"), lit(0i64))).is_err());
    // DISTINCT on a rank function.
    assert!(run(base(), FunctionCall::rank(vec![]).distinct()).is_err());
    // IGNORE NULLS on an aggregate.
    assert!(run(base(), FunctionCall::sum(col("a")).ignore_nulls()).is_err());
    // Wrong arity.
    assert!(run(base(), FunctionCall::new(FuncKind::Sum, vec![])).is_err());
    assert!(run(base(), FunctionCall::new(FuncKind::CountStar, vec![col("a")])).is_err());
    // PERCENTILE_CONT over strings.
    assert!(run(base(), FunctionCall::percentile_cont(0.5, SortKey::asc(col("s")))).is_err());
}

#[test]
fn errors_do_not_depend_on_parallelism() {
    let spec = WindowSpec::new()
        .order_by(vec![SortKey::asc(col("a"))])
        .frame(FrameSpec::rows(FrameBound::Preceding(lit(-5i64)), FrameBound::CurrentRow));
    let q = WindowQuery::over(spec).call(FunctionCall::count_star());
    let t = table();
    assert!(q.execute_with(&t, ExecOptions::default()).is_err());
    assert!(q.execute_with(&t, ExecOptions::serial()).is_err());
}

#[test]
fn ragged_table_rejected_at_construction() {
    let r = Table::new(vec![("a", Column::ints(vec![1, 2])), ("b", Column::ints(vec![1]))]);
    assert!(matches!(r, Err(Error::LengthMismatch { .. })));
}
