//! End-to-end tests of the exact queries the paper uses to motivate its
//! extensions (§1, §2.2, §2.4), with hand-checked expectations.

use holistic_windows::prelude::*;

/// §1: `count(distinct o_custkey) over (order by o_orderdate range between
/// '1 month' preceding and current row)`.
#[test]
fn monthly_active_users() {
    let orders = Table::new(vec![
        // days:       0   5  10  31  32  70
        ("o_orderdate", Column::dates(vec![0, 5, 10, 31, 32, 70])),
        ("o_custkey", Column::ints(vec![1, 2, 1, 3, 2, 1])),
    ])
    .unwrap();
    let out = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("o_orderdate"))])
            .frame(FrameSpec::range(FrameBound::Preceding(lit(30i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::count_distinct(col("o_custkey")).named("mau"))
    .execute(&orders)
    .unwrap();
    // day 0: {1}; day 5: {1,2}; day 10: {1,2}; day 31: days 1..=31 → {2,1,3};
    // day 32: days 2..=32 → {2,1,3}... day 5,10,31,32 → {2,1,3,2} = 3;
    // day 70: only itself → {1}.
    let mau: Vec<i64> =
        out.column("mau").unwrap().to_values().iter().map(|v| v.as_i64().unwrap()).collect();
    assert_eq!(mau, vec![1, 2, 2, 3, 3, 1]);
}

/// §1: `percentile_disc(0.99, order by l_receiptdate - l_shipdate) over
/// (order by l_shipdate range between '1 week' preceding and current row)`.
#[test]
fn delivery_time_percentile() {
    let lineitem = Table::new(vec![
        ("l_shipdate", Column::dates(vec![0, 2, 4, 6, 20])),
        ("l_receiptdate", Column::dates(vec![10, 3, 9, 30, 21])),
    ])
    .unwrap();
    let delivery = col("l_receiptdate").sub(col("l_shipdate")); // 10, 1, 5, 24, 1
    let out = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("l_shipdate"))])
            .frame(FrameSpec::range(FrameBound::Preceding(lit(7i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::percentile_disc(0.99, SortKey::asc(delivery)).named("p99"))
    .execute(&lineitem)
    .unwrap();
    let p99: Vec<i64> =
        out.column("p99").unwrap().to_values().iter().map(|v| v.as_i64().unwrap()).collect();
    // Frames (by shipdate, 7 days back): [0], [0,2], [0,2,4], [0,2,4,6], [20].
    // Delivery sets: {10}, {10,1}, {10,1,5}, {10,1,5,24}, {1}.
    // p99 = max for these sizes (ceil(.99*s) = s).
    assert_eq!(p99, vec![10, 10, 10, 24, 1]);
}

/// §2.4: the full TPC-C leaderboard query — six window functions over one
/// running frame, each with its own ordering.
#[test]
fn tpcc_leaderboard_semantics() {
    let t = Table::new(vec![
        ("dbsystem", Column::strs(vec!["A", "B", "A", "C"])),
        ("tps", Column::ints(vec![100, 300, 200, 250])),
        ("submission_date", Column::dates(vec![1, 2, 3, 4])),
    ])
    .unwrap();
    let w = WindowSpec::new()
        .order_by(vec![SortKey::asc(col("submission_date"))])
        .frame(FrameSpec::range(FrameBound::UnboundedPreceding, FrameBound::CurrentRow));
    let by_tps = || vec![SortKey::desc(col("tps"))];
    let out = WindowQuery::over(w)
        .call(FunctionCall::count_distinct(col("dbsystem")).named("competitors"))
        .call(FunctionCall::rank(by_tps()).named("rank"))
        .call(FunctionCall::first_value(col("tps")).order_by(by_tps()).named("best_tps"))
        .call(FunctionCall::first_value(col("dbsystem")).order_by(by_tps()).named("best_sys"))
        .call(
            FunctionCall::lead(col("tps"), 1, lit(Value::Null))
                .order_by(by_tps())
                .named("next_tps"),
        )
        .execute(&t)
        .unwrap();

    let get = |name: &str, i: usize| out.column(name).unwrap().get(i);
    // Row 0 (A, 100): alone. 1 competitor, rank 1, best = itself, no next.
    assert_eq!(get("competitors", 0), Value::Int(1));
    assert_eq!(get("rank", 0), Value::Int(1));
    assert_eq!(get("best_sys", 0), Value::str("A"));
    assert_eq!(get("next_tps", 0), Value::Null);
    // Row 1 (B, 300): {A:100, B:300}. 2 systems, B leads, next after B is A.
    assert_eq!(get("competitors", 1), Value::Int(2));
    assert_eq!(get("rank", 1), Value::Int(1));
    assert_eq!(get("best_tps", 1), Value::Int(300));
    assert_eq!(get("next_tps", 1), Value::Int(100));
    // Row 2 (A again, 200): {100, 300, 200} → 2 distinct systems, rank 2.
    assert_eq!(get("competitors", 2), Value::Int(2));
    assert_eq!(get("rank", 2), Value::Int(2));
    assert_eq!(get("best_sys", 2), Value::str("B"));
    // Next best after 200 (descending order) is 100.
    assert_eq!(get("next_tps", 2), Value::Int(100));
    // Row 3 (C, 250): {100, 300, 200, 250} → 3 systems, rank 2 (only 300 bigger),
    // next after 250 is 200.
    assert_eq!(get("competitors", 3), Value::Int(3));
    assert_eq!(get("rank", 3), Value::Int(2));
    assert_eq!(get("next_tps", 3), Value::Int(200));
}

/// §2.2: stock limit orders — per-row, non-monotonic frame bounds.
#[test]
fn stock_orders_median_over_validity() {
    let t = Table::new(vec![
        ("placement_time", Column::ints(vec![0, 10, 20, 30, 40])),
        ("price", Column::ints(vec![100, 300, 200, 500, 50])),
        ("good_for", Column::ints(vec![25, 5, 25, 15, 100])),
    ])
    .unwrap();
    let out = WindowQuery::over(
        WindowSpec::new().order_by(vec![SortKey::asc(col("placement_time"))]).frame(
            FrameSpec::range(FrameBound::CurrentRow, FrameBound::Following(col("good_for"))),
        ),
    )
    .call(FunctionCall::median(col("price")).named("med"))
    .execute(&t)
    .unwrap();
    let med: Vec<i64> =
        out.column("med").unwrap().to_values().iter().map(|v| v.as_i64().unwrap()).collect();
    // Frames by time: row0 [0,25] → times 0,10,20 → prices {100,300,200} → 200.
    // row1 [10,15] → {300} → 300. row2 [20,45] → {200,500,50} → 200.
    // row3 [30,45] → {500,50} → disc(0.5) of 2 = 1st smallest = 50.
    // row4 [40,140] → {50} → 50.
    assert_eq!(med, vec![200, 300, 200, 50, 50]);
}

/// §2's running aggregate and sliding aggregate idioms plus EXCLUDE CURRENT
/// ROW comparison against the local maximum.
#[test]
fn frame_idioms() {
    let t = Table::new(vec![("x", Column::ints(vec![5, 3, 9, 1]))]).unwrap();
    let out = WindowQuery::over(
        WindowSpec::new().order_by(vec![SortKey::asc(col("x"))]).frame(
            FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::UnboundedFollowing)
                .exclude(FrameExclusion::CurrentRow),
        ),
    )
    .call(FunctionCall::max(col("x")).named("max_of_others"))
    .execute(&t)
    .unwrap();
    // Sorted: 1, 3, 5, 9. Max of the others: 9, 9, 9, 5 — in input order
    // (5, 3, 9, 1) → 9, 9, 5, 9.
    let m: Vec<i64> = out
        .column("max_of_others")
        .unwrap()
        .to_values()
        .iter()
        .map(|v| v.as_i64().unwrap())
        .collect();
    assert_eq!(m, vec![9, 9, 5, 9]);
}

/// The paper's FILTER extension (§4.7): `RANK(ORDER BY a) FILTER (is_active)
/// OVER (...)`.
#[test]
fn filtered_rank() {
    let t = Table::new(vec![
        ("a", Column::ints(vec![10, 20, 30, 40])),
        ("is_active", Column::bools(vec![true, false, true, true])),
        ("pos", Column::ints(vec![0, 1, 2, 3])),
    ])
    .unwrap();
    let out =
        WindowQuery::over(WindowSpec::new().order_by(vec![SortKey::asc(col("pos"))]).frame(
            FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::UnboundedFollowing),
        ))
        .call(FunctionCall::rank(vec![SortKey::asc(col("a"))]).filter(col("is_active")).named("r"))
        .execute(&t)
        .unwrap();
    // Active rows: 10, 30, 40. Ranks against those: 10→1, 20→2 (one active
    // smaller), 30→2, 40→3.
    let r: Vec<i64> =
        out.column("r").unwrap().to_values().iter().map(|v| v.as_i64().unwrap()).collect();
    assert_eq!(r, vec![1, 2, 2, 3]);
}

/// IGNORE NULLS value functions (§4.5's NULL handling).
#[test]
fn ignore_nulls_first_value() {
    let t = Table::new(vec![
        ("pos", Column::ints(vec![0, 1, 2])),
        ("v", Column::ints_opt(vec![None, Some(7), Some(8)])),
    ])
    .unwrap();
    let q = |ignore: bool| {
        let mut call = FunctionCall::first_value(col("v")).named("fv");
        if ignore {
            call = call.ignore_nulls();
        }
        WindowQuery::over(
            WindowSpec::new()
                .order_by(vec![SortKey::asc(col("pos"))])
                .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
        )
        .call(call)
        .execute(&t)
        .unwrap()
    };
    assert_eq!(
        q(false).column("fv").unwrap().to_values(),
        vec![Value::Null, Value::Null, Value::Null]
    );
    assert_eq!(
        q(true).column("fv").unwrap().to_values(),
        vec![Value::Null, Value::Int(7), Value::Int(7)]
    );
}

/// DENSE_RANK against the frame (§4.4, range tree backed).
#[test]
fn framed_dense_rank() {
    let t = Table::new(vec![
        ("pos", Column::ints(vec![0, 1, 2, 3, 4])),
        ("k", Column::ints(vec![10, 10, 20, 30, 20])),
    ])
    .unwrap();
    let out = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("pos"))])
            .frame(FrameSpec::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
    )
    .call(FunctionCall::dense_rank(vec![SortKey::asc(col("k"))]).named("dr"))
    .execute(&t)
    .unwrap();
    // Prefix frames; distinct smaller keys + 1:
    // row0 {10}: 1; row1 {10,10}: 1; row2 {..20}: 2; row3 {..30}: 3;
    // row4 {10,10,20,30,20} for k=20 → distinct smaller {10} → 2.
    let dr: Vec<i64> =
        out.column("dr").unwrap().to_values().iter().map(|v| v.as_i64().unwrap()).collect();
    assert_eq!(dr, vec![1, 1, 2, 3, 2]);
}
