//! The semantics oracle: the merge-sort-tree engine must agree with the
//! naive per-row implementation on randomized tables, window specs, frames
//! and function options.
//!
//! Scenarios are drawn from the *shared* generator in `crates/fuzz`, so the
//! oracle and the differential fuzzer agree on one definition of the spec
//! space — GROUPS frames, DESC inner ORDER BYs, per-row expression bounds,
//! huge offsets, NULL-heavy and tie-heavy tables all come from the same
//! weighted distribution. The check itself is the fuzzer's differential
//! check: float-tolerant against naive, bit-identical across all eight
//! engine configurations.

use holistic_fuzz::gen::{self, case_seed, generate, GenConfig};
use holistic_fuzz::{check_case, with_quiet_panics};
use holistic_windows::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn run_cases(base_seed: u64, count: u64, cfg: &GenConfig) -> Vec<String> {
    with_quiet_panics(|| {
        (0..count)
            .filter_map(|i| {
                let case = generate(case_seed(base_seed, i), cfg);
                check_case(&case.table, &case.query).err().map(|d| {
                    format!("case {i} (seed {:#x}, n={}): {d}", case.seed, case.table.num_rows())
                })
            })
            .collect()
    })
}

#[test]
fn engine_matches_naive_on_random_workloads() {
    let cfg = GenConfig { max_n: 160, max_calls: 8 };
    let failures = run_cases(0xC0FFEE, 60, &cfg);
    assert!(failures.is_empty(), "divergences:\n{}", failures.join("\n"));
}

#[test]
fn engine_matches_naive_on_tiny_tables() {
    // Small sizes are where empty frames, single rows and all-NULL columns
    // concentrate; drive many more cases through them.
    let cfg = GenConfig { max_n: 7, max_calls: 5 };
    let failures = run_cases(0xAB1E70, 250, &cfg);
    assert!(failures.is_empty(), "divergences:\n{}", failures.join("\n"));
}

#[test]
fn engine_matches_naive_default_and_whole_partition_frames() {
    // The two fixed frames every SQL engine leans on, combined with
    // generator-drawn tables and calls.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let failures: Vec<String> = with_quiet_panics(|| {
        let mut out = Vec::new();
        for scenario in 0..12 {
            let table = gen::gen_table(&mut rng, 40 + scenario * 9);
            for frame in [FrameSpec::default_frame(), FrameSpec::whole_partition()] {
                let spec = WindowSpec::new()
                    .partition_by(vec![col("g")])
                    .order_by(vec![SortKey::asc(col("k"))])
                    .frame(frame);
                let mut q = WindowQuery::over(spec);
                for i in 0..6 {
                    let mut call = gen::gen_call(&mut rng);
                    call.output_name =
                        format!("c{i}_{}", call.kind.name().replace(['(', ')', '*'], ""));
                    q = q.call(call);
                }
                if let Err(d) = check_case(&table, &q) {
                    out.push(format!("scenario {scenario}: {d}"));
                }
            }
        }
        out
    });
    assert!(failures.is_empty(), "divergences:\n{}", failures.join("\n"));
}
