//! The semantics oracle: the merge-sort-tree engine must agree with the
//! naive per-row implementation on randomized tables, window specs, frames
//! and function options. The two sides share only the partition/sort/frame
//! plumbing; every aggregate result is derived independently.

use holistic_windows::baselines::naive;
use holistic_windows::prelude::*;
use holistic_windows::window::frame::FrameMode;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_table(rng: &mut StdRng, n: usize) -> Table {
    let groups = ["x", "y", "z"];
    let g: Vec<&str> = (0..n).map(|_| groups[rng.gen_range(0usize..3)]).collect();
    let k: Vec<Option<i64>> = (0..n)
        .map(|_| if rng.gen_bool(0.08) { None } else { Some(rng.gen_range(0..40)) })
        .collect();
    let v: Vec<Option<i64>> = (0..n)
        .map(|_| if rng.gen_bool(0.12) { None } else { Some(rng.gen_range(-15..15)) })
        .collect();
    let f: Vec<Option<f64>> = (0..n)
        .map(|_| if rng.gen_bool(0.1) { None } else { Some(rng.gen_range(-8.0..8.0)) })
        .collect();
    let d: Vec<i32> = (0..n).map(|_| rng.gen_range(0..500)).collect();
    Table::new(vec![
        ("g", Column::strs(g)),
        ("k", Column::ints_opt(k)),
        ("v", Column::ints_opt(v)),
        ("f", Column::floats_opt(f)),
        ("d", Column::dates(d)),
    ])
    .unwrap()
}

fn random_bound(rng: &mut StdRng, start: bool) -> FrameBound {
    match rng.gen_range(0..5) {
        0 => {
            if start {
                FrameBound::UnboundedPreceding
            } else {
                FrameBound::UnboundedFollowing
            }
        }
        1 => FrameBound::CurrentRow,
        2 => FrameBound::Preceding(lit(rng.gen_range(0..30i64))),
        3 => FrameBound::Following(lit(rng.gen_range(0..30i64))),
        // Per-row expression bound (non-monotonic frames, §6.5).
        _ => {
            // d − DATE '1970-01-01' turns the date into day counts.
            let days = col("d").sub(lit(Value::Date(0)));
            let e = days.mul(lit(7703i64)).rem(lit(rng.gen_range(3..25i64)));
            if rng.gen_bool(0.5) {
                FrameBound::Preceding(e)
            } else {
                FrameBound::Following(e)
            }
        }
    }
}

fn random_frame(rng: &mut StdRng, range_ok: bool) -> FrameSpec {
    let mode = match rng.gen_range(0..4) {
        0 | 1 => FrameMode::Rows,
        2 if range_ok => FrameMode::Range,
        _ => FrameMode::Groups,
    };
    let start = random_bound(rng, true);
    let end = random_bound(rng, false);
    let mut spec = match mode {
        FrameMode::Rows => FrameSpec::rows(start, end),
        FrameMode::Range => FrameSpec::range(start, end),
        FrameMode::Groups => FrameSpec::groups(start, end),
    };
    spec.exclusion = match rng.gen_range(0..4) {
        0 => FrameExclusion::NoOthers,
        1 => FrameExclusion::CurrentRow,
        2 => FrameExclusion::Group,
        _ => FrameExclusion::Ties,
    };
    spec
}

fn random_spec(rng: &mut StdRng) -> WindowSpec {
    let partition_by = if rng.gen_bool(0.5) { vec![col("g")] } else { vec![] };
    // RANGE with offsets needs one non-null... a single numeric key; allow
    // NULLs (peer-group semantics are exercised too).
    let (order_by, range_ok) = match rng.gen_range(0..4) {
        0 => (vec![SortKey::asc(col("k"))], true),
        1 => (vec![SortKey::desc(col("k"))], true),
        2 => (vec![SortKey::asc(col("d"))], true),
        _ => (vec![SortKey::asc(col("k")), SortKey::desc(col("d"))], false),
    };
    WindowSpec::new()
        .partition_by(partition_by)
        .order_by(order_by)
        .frame(random_frame(rng, range_ok))
}

fn random_inner_order(rng: &mut StdRng) -> Vec<SortKey> {
    match rng.gen_range(0..3) {
        0 => vec![SortKey::asc(col("v"))],
        1 => vec![SortKey::desc(col("v"))],
        _ => vec![SortKey::asc(col("f"))],
    }
}

fn all_calls(rng: &mut StdRng) -> Vec<FunctionCall> {
    let maybe_filter = |c: FunctionCall, rng: &mut StdRng| {
        if rng.gen_bool(0.4) {
            let days = col("d").sub(lit(Value::Date(0)));
            c.filter(days.rem(lit(3i64)).ne(lit(0i64)))
        } else {
            c
        }
    };
    let mut calls = vec![
        FunctionCall::count_star(),
        FunctionCall::count(col("v")),
        FunctionCall::count_distinct(col("v")),
        FunctionCall::sum(col("v")),
        FunctionCall::sum_distinct(col("v")),
        FunctionCall::sum(col("f")),
        FunctionCall::sum_distinct(col("f")),
        FunctionCall::avg(col("v")).distinct(),
        FunctionCall::avg(col("f")),
        FunctionCall::min(col("v")),
        FunctionCall::max(col("f")),
        FunctionCall::min(col("g")),
        FunctionCall::row_number(random_inner_order(rng)),
        FunctionCall::row_number(vec![]),
        FunctionCall::rank(random_inner_order(rng)),
        FunctionCall::rank(vec![]),
        FunctionCall::dense_rank(random_inner_order(rng)),
        FunctionCall::dense_rank(vec![]),
        FunctionCall::percent_rank(random_inner_order(rng)),
        FunctionCall::cume_dist(random_inner_order(rng)),
        FunctionCall::ntile(lit(rng.gen_range(1..6i64)), random_inner_order(rng)),
        FunctionCall::percentile_disc(rng.gen_range(0.0..=1.0), SortKey::asc(col("v"))),
        FunctionCall::percentile_disc(0.99, SortKey::desc(col("f"))),
        FunctionCall::percentile_cont(rng.gen_range(0.0..=1.0), SortKey::asc(col("f"))),
        FunctionCall::median(col("v")),
        FunctionCall::first_value(col("v")),
        FunctionCall::first_value(col("v")).order_by(random_inner_order(rng)),
        FunctionCall::first_value(col("v")).ignore_nulls(),
        FunctionCall::last_value(col("g")).order_by(random_inner_order(rng)),
        FunctionCall::nth_value(col("v"), lit(rng.gen_range(1..5i64))),
        FunctionCall::nth_value(col("g"), lit(2i64)).order_by(random_inner_order(rng)),
        FunctionCall::lead(col("v"), rng.gen_range(1..4), lit(-99i64)),
        FunctionCall::lag(col("v"), rng.gen_range(1..4), lit(-99i64)),
        FunctionCall::lead(col("v"), 1, lit(-99i64)).order_by(random_inner_order(rng)),
        FunctionCall::lag(col("g"), 2, lit("none")).order_by(random_inner_order(rng)),
        FunctionCall::lead(col("v"), 1, lit(-99i64)).ignore_nulls(),
        FunctionCall::lead(col("v"), 1, lit(-99i64))
            .order_by(random_inner_order(rng))
            .ignore_nulls(),
        FunctionCall::mode(col("v")),
        FunctionCall::mode(col("g")),
    ];
    calls = calls.into_iter().map(|c| maybe_filter(c, rng)).collect();
    for (i, c) in calls.iter_mut().enumerate() {
        c.output_name = format!("c{i}_{}", c.kind.name().replace(['(', ')', '*'], ""));
    }
    calls
}

fn values_close(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
        (Value::Float(x), Value::Int(y)) | (Value::Int(y), Value::Float(x)) => {
            (*x - *y as f64).abs() <= 1e-9
        }
        _ => a == b,
    }
}

fn compare(table: &Table, q: &WindowQuery, label: &str) {
    let expect = naive::execute(q, table).unwrap();
    for opts in [ExecOptions::default(), ExecOptions::serial()] {
        let got = q.execute_with(table, opts).unwrap();
        for (name, col_got) in got.iter() {
            let col_exp = expect.column(name).unwrap();
            for i in 0..table.num_rows() {
                let (g, e) = (col_got.get(i), col_exp.get(i));
                assert!(
                    values_close(&g, &e),
                    "{label}: column {name} row {i}: engine={g} naive={e} \
                     (parallel={})",
                    opts.parallel,
                );
            }
        }
    }
}

#[test]
fn engine_matches_naive_on_random_workloads() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for scenario in 0..25 {
        let n = rng.gen_range(1..160);
        let table = random_table(&mut rng, n);
        let spec = random_spec(&mut rng);
        let mut q = WindowQuery::over(spec.clone());
        for call in all_calls(&mut rng) {
            q = q.call(call);
        }
        compare(&table, &q, &format!("scenario {scenario} (n={n}, spec={spec:?})"));
    }
}

#[test]
fn engine_matches_naive_default_and_whole_partition_frames() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for scenario in 0..6 {
        let n = rng.gen_range(1..120);
        let table = random_table(&mut rng, n);
        for frame in [FrameSpec::default_frame(), FrameSpec::whole_partition()] {
            let spec = WindowSpec::new()
                .partition_by(vec![col("g")])
                .order_by(vec![SortKey::asc(col("k"))])
                .frame(frame);
            let mut q = WindowQuery::over(spec);
            for call in all_calls(&mut rng) {
                q = q.call(call);
            }
            compare(&table, &q, &format!("default-frame scenario {scenario}"));
        }
    }
}

#[test]
fn engine_matches_naive_on_tiny_tables() {
    // Exhaustive-ish small sizes (empty frames, single rows, all-null cols).
    let mut rng = StdRng::seed_from_u64(0xAB1E70);
    for n in 1..8usize {
        for _ in 0..6 {
            let table = random_table(&mut rng, n);
            let spec = random_spec(&mut rng);
            let mut q = WindowQuery::over(spec);
            for call in all_calls(&mut rng) {
                q = q.call(call);
            }
            compare(&table, &q, &format!("tiny n={n}"));
        }
    }
}
