//! Scale spot-checks: run the engine on 200 000-row workloads (multi-level
//! trees, parallel build paths, sampled cascading in anger) and verify a
//! random sample of output rows against direct per-row computation.

use holistic_windows::prelude::*;
use holistic_windows::window::frame::resolve_frames;
use holistic_windows::window::order::{sort_permutation, KeyColumns};
use rand::{rngs::StdRng, Rng, SeedableRng};

const N: usize = 200_000;
const SPOT: usize = 40;

struct Prepared {
    table: Table,
    /// Partition positions → table rows, window order.
    rows: Vec<usize>,
    /// Per position [start, end).
    bounds: Vec<(usize, usize)>,
}

fn prepare(seed: u64, w: i64) -> Prepared {
    let mut rng = StdRng::seed_from_u64(seed);
    let key: Vec<i64> = (0..N).map(|_| rng.gen_range(0..1_000_000)).collect();
    let val: Vec<i64> = (0..N).map(|_| rng.gen_range(0..5_000)).collect();
    let table = Table::new(vec![("k", Column::ints(key)), ("v", Column::ints(val))]).unwrap();
    let kc = KeyColumns::evaluate(&table, &[SortKey::asc(col("k"))]).unwrap();
    let mut rows: Vec<usize> = (0..N).collect();
    sort_permutation(&kc, &mut rows, true);
    let spec = FrameSpec::rows(FrameBound::Preceding(lit(w)), FrameBound::CurrentRow);
    let rf = resolve_frames(&table, &rows, &kc, &spec).unwrap();
    Prepared { table, rows, bounds: rf.bounds }
}

fn frame_values(p: &Prepared, pos: usize) -> Vec<i64> {
    let (a, b) = p.bounds[pos];
    (a..b).map(|q| p.table.column("v").unwrap().get(p.rows[q]).as_i64().unwrap()).collect()
}

#[test]
fn large_median_spot_check() {
    let w = 9_999i64;
    let p = prepare(1, w);
    let out = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("k"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(w)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::median(col("v")).named("med"))
    .execute(&p.table)
    .unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..SPOT {
        let pos = rng.gen_range(0..N);
        let row = p.rows[pos];
        let mut fv = frame_values(&p, pos);
        fv.sort_unstable();
        let j = ((0.5 * fv.len() as f64).ceil() as usize).clamp(1, fv.len());
        assert_eq!(out.column("med").unwrap().get(row).as_i64().unwrap(), fv[j - 1], "pos {pos}");
    }
}

#[test]
fn large_distinct_count_spot_check() {
    let w = 20_000i64;
    let p = prepare(3, w);
    let out = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("k"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(w)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::count_distinct(col("v")).named("cd"))
    .execute(&p.table)
    .unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..SPOT {
        let pos = rng.gen_range(0..N);
        let row = p.rows[pos];
        let fv = frame_values(&p, pos);
        let distinct: std::collections::HashSet<i64> = fv.into_iter().collect();
        assert_eq!(
            out.column("cd").unwrap().get(row).as_i64().unwrap() as usize,
            distinct.len(),
            "pos {pos}"
        );
    }
}

#[test]
fn large_rank_spot_check() {
    let w = 50_000i64;
    let p = prepare(5, w);
    let out = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("k"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(w)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::rank(vec![SortKey::desc(col("v"))]).named("r"))
    .execute(&p.table)
    .unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..SPOT {
        let pos = rng.gen_range(0..N);
        let row = p.rows[pos];
        let mine = p.table.column("v").unwrap().get(row).as_i64().unwrap();
        // DESC ranking: count frame values strictly greater.
        let bigger = frame_values(&p, pos).into_iter().filter(|&x| x > mine).count();
        assert_eq!(
            out.column("r").unwrap().get(row).as_i64().unwrap() as usize,
            bigger + 1,
            "pos {pos}"
        );
    }
}

#[test]
fn serial_equals_parallel_at_scale() {
    let p = prepare(7, 5_000);
    let q = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("k"))])
            .frame(FrameSpec::rows(FrameBound::Preceding(lit(5_000i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::median(col("v")).named("med"))
    .call(FunctionCall::count_distinct(col("v")).named("cd"));
    let a = q.execute_with(&p.table, ExecOptions::default()).unwrap();
    let b = q.execute_with(&p.table, ExecOptions::serial()).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..SPOT * 10 {
        let row = rng.gen_range(0..N);
        for name in ["med", "cd"] {
            assert!(a.column(name).unwrap().get(row).sql_eq(&b.column(name).unwrap().get(row)));
        }
    }
}
