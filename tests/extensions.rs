//! Tests of the repository's extensions beyond the paper: framed MODE,
//! GROUPS frames, and CSV ingestion feeding the engine.

use holistic_windows::prelude::*;
use holistic_windows::window::csv::{table_from_csv, table_to_csv};
use holistic_windows::window::frame::FrameSpec as FS;

#[test]
fn framed_mode_basics() {
    let t = Table::new(vec![
        ("pos", Column::ints(vec![0, 1, 2, 3, 4, 5])),
        ("v", Column::ints_opt(vec![Some(3), Some(1), Some(3), None, Some(1), Some(1)])),
    ])
    .unwrap();
    let out = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("pos"))])
            .frame(FS::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
    )
    .call(FunctionCall::mode(col("v")).named("m"))
    .execute(&t)
    .unwrap();
    // Prefixes: {3}, {3,1}→tie→1, {3,1,3}→3, {3,1,3,Ø}→3, {..1}→tie→1, {..1,1}→1.
    let m: Vec<Value> = out.column("m").unwrap().to_values();
    assert_eq!(
        m,
        vec![
            Value::Int(3),
            Value::Int(1),
            Value::Int(3),
            Value::Int(3),
            Value::Int(1),
            Value::Int(1)
        ]
    );
}

#[test]
fn framed_mode_with_exclusion_and_strings() {
    let t = Table::new(vec![
        ("pos", Column::ints(vec![0, 1, 2, 3])),
        ("v", Column::strs(vec!["b", "a", "b", "a"])),
    ])
    .unwrap();
    let out = WindowQuery::over(
        WindowSpec::new().order_by(vec![SortKey::asc(col("pos"))]).frame(
            FS::rows(FrameBound::UnboundedPreceding, FrameBound::UnboundedFollowing)
                .exclude(FrameExclusion::CurrentRow),
        ),
    )
    .call(FunctionCall::mode(col("v")).named("m"))
    .execute(&t)
    .unwrap();
    // Without row 0: {a,b,a} → a. Without row 1: {b,b,a} → b. etc.
    let m: Vec<Value> = out.column("m").unwrap().to_values();
    assert_eq!(m, vec![Value::str("a"), Value::str("b"), Value::str("a"), Value::str("b")]);
}

#[test]
fn mode_rejects_distinct() {
    assert!(FunctionCall::mode(col("v")).distinct().validate().is_err());
}

#[test]
fn groups_frames_with_holistic_functions() {
    // GROUPS 1 PRECEDING..CURRENT ROW over tied order keys.
    let t = Table::new(vec![
        ("k", Column::ints(vec![1, 1, 2, 3, 3])),
        ("v", Column::ints(vec![10, 20, 30, 40, 50])),
    ])
    .unwrap();
    let out = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("k"))])
            .frame(FS::groups(FrameBound::Preceding(lit(1i64)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::median(col("v")).named("med"))
    .call(FunctionCall::count_distinct(col("k")).named("cd"))
    .execute(&t)
    .unwrap();
    // Frames: k=1 rows → groups {1}: values 10,20 → median disc = 10; cd = 1.
    // k=2 → groups {1,2}: 10,20,30 → 20; cd = 2.
    // k=3 rows → groups {2,3}: 30,40,50 → 40; cd = 2.
    let med: Vec<Value> = out.column("med").unwrap().to_values();
    assert_eq!(
        med,
        vec![Value::Int(10), Value::Int(10), Value::Int(20), Value::Int(40), Value::Int(40)]
    );
    let cd: Vec<Value> = out.column("cd").unwrap().to_values();
    assert_eq!(cd, vec![Value::Int(1), Value::Int(1), Value::Int(2), Value::Int(2), Value::Int(2)]);
}

#[test]
fn csv_to_engine_roundtrip() {
    let csv = "\
day,region,sales
2024-01-01,west,100
2024-01-02,west,300
2024-01-03,west,
2024-01-01,east,50
2024-01-02,east,70
";
    let t = table_from_csv(csv).unwrap();
    let out = WindowQuery::over(
        WindowSpec::new()
            .partition_by(vec![col("region")])
            .order_by(vec![SortKey::asc(col("day"))])
            .frame(FS::rows(FrameBound::UnboundedPreceding, FrameBound::CurrentRow)),
    )
    .call(FunctionCall::sum(col("sales")).named("running"))
    .call(FunctionCall::count(col("sales")).named("non_null"))
    .execute(&t)
    .unwrap();
    assert_eq!(
        out.column("running").unwrap().to_values(),
        vec![
            Value::Int(100),
            Value::Int(400),
            Value::Int(400), // NULL row adds nothing
            Value::Int(50),
            Value::Int(120)
        ]
    );
    assert_eq!(out.column("non_null").unwrap().get(2), Value::Int(2));
    // And back out to CSV.
    let text = table_to_csv(&out);
    assert!(text.starts_with("running,non_null\n"));
    assert!(text.contains("400,2"));
}

#[test]
fn mode_matches_incremental_baseline_on_slides() {
    use holistic_windows::baselines::incremental;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(77);
    let n = 300;
    let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(0..7)).collect();
    let t = Table::new(vec![
        ("pos", Column::ints((0..n as i64).collect())),
        ("v", Column::ints(vals.clone())),
    ])
    .unwrap();
    let w = 25usize;
    let out = WindowQuery::over(
        WindowSpec::new()
            .order_by(vec![SortKey::asc(col("pos"))])
            .frame(FS::rows(FrameBound::Preceding(lit(w as i64 - 1)), FrameBound::CurrentRow)),
    )
    .call(FunctionCall::mode(col("v")).named("m"))
    .execute(&t)
    .unwrap();
    let frames: Vec<(usize, usize)> =
        (0..n).map(|i: usize| (i.saturating_sub(w - 1), i + 1)).collect();
    let expect = incremental::mode(&vals, &frames);
    for (i, e) in expect.iter().enumerate() {
        assert_eq!(out.column("m").unwrap().get(i).as_i64(), *e, "row {i}");
    }
}
