//! # holistic-windows
//!
//! A Rust reproduction of Vogelsgesang, Neumann, Leis & Kemper, *"Efficient
//! Evaluation of Arbitrarily-Framed Holistic SQL Aggregates and Window
//! Functions"* (SIGMOD 2022): merge sort trees with sampled fractional
//! cascading, embedded in a complete window-operator engine, together with
//! every baseline the paper evaluates against and a benchmark harness that
//! regenerates every table and figure.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] — merge sort trees, annotated trees, preprocessing (the paper's
//!   contribution, §4–§5),
//! * [`window`] — the window operator substrate and all framed SQL functions,
//! * [`segtree`] — segment trees (Leis et al.) for distributive aggregates,
//! * [`rangetree`] — 3-d range counting for framed DENSE_RANK,
//! * [`baselines`] — naive / incremental (Wesley & Xu) / order-statistic-tree
//!   competitors, task-parallel wrappers and SQL-plan simulators,
//! * [`tpch`] — deterministic TPC-H-style workload generators.
//!
//! ```
//! use holistic_windows::prelude::*;
//!
//! // §1's motivating query: monthly-active users as a framed distinct count.
//! let orders = Table::new(vec![
//!     ("o_orderdate", Column::dates(vec![0, 10, 20, 40, 45])),
//!     ("o_custkey", Column::ints(vec![1, 2, 1, 2, 2])),
//! ]).unwrap();
//!
//! let out = WindowQuery::over(
//!     WindowSpec::new()
//!         .order_by(vec![SortKey::asc(col("o_orderdate"))])
//!         .frame(FrameSpec::range(FrameBound::Preceding(lit(30i64)), FrameBound::CurrentRow)),
//! )
//! .call(FunctionCall::count_distinct(col("o_custkey")).named("mau"))
//! .execute(&orders)
//! .unwrap();
//!
//! let mau: Vec<_> = out.column("mau").unwrap().to_values();
//! // Day 45's month covers days 15–45: customers {1, 2} are active.
//! assert_eq!(mau, vec![Value::Int(1), Value::Int(2), Value::Int(2), Value::Int(2), Value::Int(2)]);
//! ```

pub use holistic_baselines as baselines;
pub use holistic_core as core;
pub use holistic_rangetree as rangetree;
pub use holistic_segtree as segtree;
pub use holistic_tpch as tpch;
pub use holistic_window as window;

/// One-stop imports for applications.
pub mod prelude {
    pub use holistic_core::{MergeSortTree, MstParams, RangeSet};
    pub use holistic_window::prelude::*;
}
